/**
 * @file
 * Plan -> TmuProgram: a single generic walk over the plan's layers.
 * No per-kernel code lives here — every structural difference between
 * kernels (merge modes, chained lookups, forwarded bounds, address
 * streams) is data in the PlanSpec. Name resolution implements the
 * dataflow rules of the IR:
 *
 *   - traversal bounds and Fwd sources resolve in the *previous*
 *     layer: the same lane when that lane defines the name, lane 0
 *     otherwise (the broadcast case);
 *   - stream index parents (parent/parent2) resolve in the *same* TU;
 *   - group-stream constituents are collected, in lane order, from
 *     every TU of the layer that defines the name ("@ite" selects the
 *     TU's implicit iteration stream);
 *   - callback operands name the layer's group streams ("@msk" maps
 *     to engine::kMskOperand).
 */

#include <map>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "plan/lower.hpp"

namespace tmu::plan {

using engine::StreamRef;
using engine::TmuProgram;
using engine::TuRef;

namespace {

/** Stream name -> StreamRef map per (layer, lane). */
using LaneNames = std::map<std::string, StreamRef>;

StreamRef
lookup(const LaneNames &names, const std::string &name,
       const char *planName)
{
    const auto it = names.find(name);
    TMU_ASSERT(it != names.end(), "plan '%s': unresolved stream '%s'",
               planName, name.c_str());
    return it->second;
}

/**
 * Resolve a previous-layer stream reference for @p lane: the same
 * lane's TU when it defines @p name, lane 0 otherwise.
 */
StreamRef
lookupPrev(const std::vector<LaneNames> &prev, int lane,
           const std::string &name, const char *planName)
{
    if (lane < static_cast<int>(prev.size())) {
        const auto it = prev[static_cast<size_t>(lane)].find(name);
        if (it != prev[static_cast<size_t>(lane)].end())
            return it->second;
    }
    TMU_ASSERT(!prev.empty(), "plan '%s': no previous layer for '%s'",
               planName, name.c_str());
    return lookup(prev.front(), name, planName);
}

} // namespace

TmuProgram
lowerProgram(const PlanSpec &plan)
{
    plan.validate();
    const char *pn = plan.name.c_str();
    TmuProgram p;

    // names[layer][lane]: every stream the walk has materialized.
    std::vector<std::vector<LaneNames>> names;
    names.reserve(plan.layers.size());

    for (size_t l = 0; l < plan.layers.size(); ++l) {
        const LayerSpec &layer = plan.layers[l];
        const int li = p.addLayer(layer.mode);
        names.emplace_back(layer.tus.size());
        std::vector<LaneNames> &cur = names.back();
        const std::vector<LaneNames> empty;
        const std::vector<LaneNames> &prev =
            l > 0 ? names[l - 1] : empty;

        for (size_t lane = 0; lane < layer.tus.size(); ++lane) {
            const TuSpec &tu = layer.tus[lane];
            const int r = static_cast<int>(lane);
            TuRef t;
            switch (tu.kind) {
            case engine::TraversalKind::Dense:
                t = p.dnsFbrT(li, r, tu.beg, tu.end, tu.stride);
                break;
            case engine::TraversalKind::Range:
                t = p.rngFbrT(li, r,
                              lookupPrev(prev, r, tu.begStream, pn),
                              lookupPrev(prev, r, tu.endStream, pn),
                              tu.offset, tu.stride);
                break;
            case engine::TraversalKind::Index:
                t = p.idxFbrT(li, r,
                              lookupPrev(prev, r, tu.begStream, pn),
                              tu.size, tu.offset, tu.stride);
                break;
            }

            LaneNames &mine = cur[lane];
            mine[kIteStream] = p.iteStream(t);
            for (const StreamSpec &s : tu.streams) {
                const StreamRef parent =
                    s.parent.empty() ? StreamRef{}
                                     : lookup(mine, s.parent, pn);
                const StreamRef parent2 =
                    s.parent2.empty() ? StreamRef{}
                                      : lookup(mine, s.parent2, pn);
                StreamRef ref;
                switch (s.kind) {
                case engine::StreamKind::Mem:
                    ref = p.addMemStream(t, s.base, s.elem, parent,
                                         s.name, parent2);
                    break;
                case engine::StreamKind::Lin:
                    ref = p.addLinStream(t, s.linA, s.linB, parent,
                                         s.name, parent2);
                    break;
                case engine::StreamKind::Ldr:
                    ref = p.addLdrStream(t, s.base, parent, s.name,
                                         parent2);
                    break;
                case engine::StreamKind::Fwd:
                    ref = p.addFwdStream(
                        t, lookupPrev(prev, r, s.fwdOf, pn), s.name);
                    break;
                default:
                    TMU_PANIC("plan '%s': stream '%s': unsupported "
                              "stream kind", pn, s.name.c_str());
                }
                mine[s.name] = ref;
            }
            if (!tu.mergeKey.empty())
                p.setMergeKey(t, lookup(mine, tu.mergeKey, pn));
            p.setExpectedFiberLen(t, tu.expectedFiberLen);
        }
    }

    // Group streams, in declaration order (per-layer operand order).
    std::map<std::string, int> operandIndex;
    for (const GroupStreamSpec &g : plan.groupStreams) {
        std::vector<StreamRef> perLane;
        for (const LaneNames &lane :
             names[static_cast<size_t>(g.layer)]) {
            const auto it = lane.find(g.stream);
            if (it != lane.end())
                perLane.push_back(it->second);
        }
        TMU_ASSERT(!perLane.empty(),
                   "plan '%s': group stream '%s' matched no lane", pn,
                   g.name.c_str());
        operandIndex[g.name] =
            p.addVecStream(g.layer, perLane, g.elem, g.name);
    }

    for (const CallbackSpec &cb : plan.callbacks) {
        std::vector<int> ops;
        ops.reserve(cb.operands.size());
        for (const std::string &op : cb.operands) {
            if (op == kMskStream) {
                ops.push_back(engine::kMskOperand);
                continue;
            }
            const auto it = operandIndex.find(op);
            TMU_ASSERT(it != operandIndex.end(),
                       "plan '%s': callback '%s': unknown operand '%s'",
                       pn, cb.name.c_str(), op.c_str());
            ops.push_back(it->second);
        }
        p.addCallback(cb.layer, cb.event, cb.id, std::move(ops));
    }
    return p;
}

} // namespace tmu::plan
