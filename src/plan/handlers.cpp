/**
 * @file
 * Plan -> TMU-mode callback-handler table. One handler body per
 * ComputeKind, registered on the OutqSource under the plan-scoped
 * callback ids; the bodies replicate the legacy per-workload lambdas
 * exactly (same host-side compute, same micro-op cost model), so the
 * simulated timing of a plan-lowered run is identical to the old
 * hand-written path. Handlers capture the per-core PlanState by
 * reference and the plan's binding pointers/scalars by value.
 */

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "plan/lower.hpp"
#include "sim/addrspace.hpp"

namespace tmu::plan {

using engine::OutqRecord;
using engine::OutqSource;
using sim::MicroOp;
using sim::addrOf;

void
initPlanState(const PlanSpec &plan, PlanState &st)
{
    switch (plan.kind) {
    case PlanKind::RowReduce:
        st.row = plan.beg;
        st.sum = 0.0;
        break;
    case PlanKind::WorkspaceSpGEMM:
        TMU_ASSERT(plan.bind.b, "plan '%s': SpGEMM needs operand B",
                   plan.name.c_str());
        st.acc.assign(static_cast<size_t>(plan.bind.b->cols()), 0.0);
        st.seen.assign(static_cast<size_t>(plan.bind.b->cols()), 0);
        break;
    case PlanKind::KWayMerge:
        st.curRow = kInvalidIndex;
        break;
    case PlanKind::Intersect:
        st.count = 0;
        break;
    case PlanKind::CooRankFma:
        break;
    case PlanKind::Sddmm:
        st.sum = 0.0;
        st.j = 0;
        break;
    case PlanKind::SpmmWorkspace:
        TMU_ASSERT(plan.bind.bm, "plan '%s': SpMM needs dense factor B",
                   plan.name.c_str());
        st.acc.assign(static_cast<size_t>(plan.bind.bm->cols()), 0.0);
        st.seen.assign(static_cast<size_t>(plan.bind.bm->cols()), 0);
        break;
    case PlanKind::SpmmScatter:
        st.zRow = 0;
        break;
    }
}

void
bindHandlers(const PlanSpec &plan, OutqSource &src, PlanState &st)
{
    for (const CallbackSpec &cb : plan.callbacks) {
        switch (cb.compute) {
        case ComputeKind::DotAccumulate:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                for (size_t i = 0; i < rec.operands[0].size(); ++i)
                    st.sum += rec.f64(0, static_cast<int>(i)) *
                              rec.f64(1, static_cast<int>(i));
                ops.push_back(MicroOp::flop(static_cast<std::uint16_t>(
                    2 * rec.operands[0].size())));
            });
            break;
        case ComputeKind::RowStore: {
            tensor::DenseVector *out = plan.bind.out;
            TMU_ASSERT(out, "plan '%s': RowStore needs an output vector",
                       plan.name.c_str());
            const bool rowUpdate = plan.bind.rowUpdate;
            const double scale = plan.bind.scale;
            const double bias = plan.bind.bias;
            src.setHandler(
                cb.id, [&st, out, rowUpdate, scale, bias](
                           const OutqRecord &,
                           std::vector<MicroOp> &ops) {
                    Value v = st.sum;
                    if (rowUpdate) {
                        v = bias + scale * v;
                        ops.push_back(MicroOp::flop(2));
                    }
                    (*out)[st.row] = v;
                    ops.push_back(MicroOp::store(
                        addrOf(out->data(), st.row), 8));
                    ++st.row;
                    st.sum = 0.0;
                });
            break;
        }
        case ComputeKind::LatchScalar:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                st.aVal = rec.f64(0, 0);
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::WorkspaceAccum:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                const auto n = rec.operands[0].size();
                // Scatter-accumulate into the workspace: per lane a
                // load + FMA + store on acc[j].
                for (size_t i = 0; i < n; ++i) {
                    const auto j = static_cast<size_t>(
                        rec.i64(0, static_cast<int>(i)));
                    if (!st.seen[j]) {
                        st.seen[j] = 1;
                        st.touched.push_back(static_cast<Index>(j));
                    }
                    st.acc[j] +=
                        st.aVal * rec.f64(1, static_cast<int>(i));
                    ops.push_back(MicroOp::load(
                        addrOf(st.acc.data(), static_cast<Index>(j)),
                        8));
                    ops.push_back(MicroOp::store(
                        addrOf(st.acc.data(), static_cast<Index>(j)),
                        8));
                }
                ops.push_back(
                    MicroOp::flop(static_cast<std::uint16_t>(2 * n)));
            });
            break;
        case ComputeKind::WorkspaceFlush:
            src.setHandler(cb.id, [&st](const OutqRecord &,
                                        std::vector<MicroOp> &ops) {
                std::sort(st.touched.begin(), st.touched.end());
                const auto tn = static_cast<double>(st.touched.size());
                const auto cmps = static_cast<Index>(
                    tn > 1.0 ? tn * std::log2(tn) : 0.0);
                for (Index i = 0; i < cmps; ++i)
                    ops.push_back(MicroOp::iop());
                for (const Index j : st.touched) {
                    st.idxs.push_back(j);
                    st.vals.push_back(st.acc[static_cast<size_t>(j)]);
                    st.acc[static_cast<size_t>(j)] = 0.0;
                    st.seen[static_cast<size_t>(j)] = 0;
                    ops.push_back(
                        MicroOp::load(addrOf(st.acc.data(), j), 8));
                    ops.push_back(MicroOp::store(
                        addrOf(st.vals.data(),
                               static_cast<Index>(st.vals.size() - 1)),
                        8));
                }
                st.rowNnz.push_back(
                    static_cast<Index>(st.touched.size()));
                st.touched.clear();
            });
            break;
        case ComputeKind::MergeRowLatch:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                st.curRow = rec.i64(0, 0);
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::MergeLaneReduce:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                // Fig. 7: *out_ptr++ = vec_reduce(nnz_els).
                Value sum = 0.0;
                const auto n = rec.operands[1].size();
                for (size_t i = 0; i < n; ++i)
                    sum += rec.f64(1, static_cast<int>(i));
                st.rows.push_back(st.curRow);
                st.idxs.push_back(rec.i64(0, 0));
                st.vals.push_back(sum);
                ops.push_back(
                    MicroOp::flop(static_cast<std::uint16_t>(n)));
                ops.push_back(MicroOp::store(
                    addrOf(st.vals.data(),
                           static_cast<Index>(st.vals.size() - 1)),
                    8));
            });
            break;
        case ComputeKind::MergeRowEnd:
            src.setHandler(cb.id,
                           [](const OutqRecord &,
                              std::vector<MicroOp> &ops) {
                               ops.push_back(MicroOp::iop());
                           });
            break;
        case ComputeKind::CountHit:
            src.setHandler(cb.id, [&st](const OutqRecord &,
                                        std::vector<MicroOp> &ops) {
                ++st.count;
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::LatchLanes:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                const auto n = rec.operands[0].size();
                st.laneV.assign(n, 0.0);
                st.laneZ.assign(n, 0);
                for (size_t i = 0; i < n; ++i) {
                    st.laneV[i] = rec.f64(0, static_cast<int>(i));
                    st.laneZ[i] =
                        static_cast<Addr>(rec.operands[1][i]);
                }
                st.j = 0;
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::LatchNnzAddr:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                st.v = rec.f64(0, 0);
                st.zRow = static_cast<Addr>(rec.operands[1][0]);
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::RankFmaScatter:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                const auto n = rec.operands[0].size();
                // Lanes walk their own fibers; all share the same j.
                for (size_t i = 0; i < n; ++i) {
                    auto *zrow = static_cast<Value *>(
                        sim::hostPtr(st.laneZ[i]));
                    zrow[st.j] += st.laneV[i] *
                                  rec.f64(0, static_cast<int>(i)) *
                                  rec.f64(1, static_cast<int>(i));
                    // Scatter FMA: one element load + store per lane.
                    ops.push_back(MicroOp::load(
                        st.laneZ[i] + static_cast<Addr>(st.j) * 8, 8));
                    ops.push_back(MicroOp::store(
                        st.laneZ[i] + static_cast<Addr>(st.j) * 8, 8));
                }
                ops.push_back(
                    MicroOp::flop(static_cast<std::uint16_t>(3 * n)));
                ++st.j;
            });
            break;
        case ComputeKind::RankFmaVector:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                const auto n = rec.operands[0].size();
                // Lanes cover a contiguous j block: vector FMA into z.
                const auto jBase = static_cast<Index>(rec.i64(0, 0));
                auto *zrow =
                    static_cast<Value *>(sim::hostPtr(st.zRow));
                for (size_t i = 0; i < n; ++i) {
                    const auto j = static_cast<size_t>(
                        rec.i64(0, static_cast<int>(i)));
                    zrow[j] += st.v * rec.f64(1, static_cast<int>(i)) *
                               rec.f64(2, static_cast<int>(i));
                }
                ops.push_back(MicroOp::load(
                    st.zRow + static_cast<Addr>(jBase) * 8,
                    static_cast<std::uint8_t>(n * 8)));
                ops.push_back(
                    MicroOp::flop(static_cast<std::uint16_t>(3 * n)));
                ops.push_back(MicroOp::store(
                    st.zRow + static_cast<Addr>(jBase) * 8,
                    static_cast<std::uint8_t>(n * 8)));
            });
            break;
        case ComputeKind::SddmmLatchEdge:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                st.curRow = rec.i64(0, 0);
                st.aVal = rec.f64(1, 0);
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::SddmmEmit:
            src.setHandler(cb.id, [&st](const OutqRecord &,
                                        std::vector<MicroOp> &ops) {
                st.idxs.push_back(st.curRow);
                st.vals.push_back(st.aVal * st.sum);
                st.sum = 0.0;
                ++st.j;
                ops.push_back(MicroOp::flop(1));
                ops.push_back(MicroOp::store(
                    addrOf(st.vals.data(),
                           static_cast<Index>(st.vals.size() - 1)),
                    8));
            });
            break;
        case ComputeKind::EmitRowNnz:
            src.setHandler(cb.id, [&st](const OutqRecord &,
                                        std::vector<MicroOp> &ops) {
                st.rowNnz.push_back(st.j);
                st.j = 0;
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::LatchRowAddr:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                st.zRow = static_cast<Addr>(rec.operands[0][0]);
                ops.push_back(MicroOp::iop());
            });
            break;
        case ComputeKind::ScatterFmaVector:
            src.setHandler(cb.id, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                const auto n = rec.operands[0].size();
                // Lanes cover a contiguous j block of the scatter row.
                const auto jBase = static_cast<Index>(rec.i64(0, 0));
                auto *zrow =
                    static_cast<Value *>(sim::hostPtr(st.zRow));
                for (size_t i = 0; i < n; ++i) {
                    const auto j = static_cast<size_t>(
                        rec.i64(0, static_cast<int>(i)));
                    zrow[j] += st.aVal * rec.f64(1, static_cast<int>(i));
                }
                ops.push_back(MicroOp::load(
                    st.zRow + static_cast<Addr>(jBase) * 8,
                    static_cast<std::uint8_t>(n * 8)));
                ops.push_back(
                    MicroOp::flop(static_cast<std::uint16_t>(2 * n)));
                ops.push_back(MicroOp::store(
                    st.zRow + static_cast<Addr>(jBase) * 8,
                    static_cast<std::uint8_t>(n * 8)));
            });
            break;
        }
    }
}

} // namespace tmu::plan
