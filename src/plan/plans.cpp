#include "plan/plans.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace tmu::plan {

using engine::CallbackEvent;
using engine::ElemType;
using engine::GroupMode;
using engine::StreamKind;
using engine::TraversalKind;
using tensor::CooTensor;
using tensor::CsrMatrix;
using tensor::DcsrMatrix;
using tensor::DenseMatrix;
using tensor::DenseVector;

namespace {

StreamSpec
mem(std::string name, const void *base, ElemType elem,
    std::string parent = {}, std::string parent2 = {})
{
    StreamSpec s;
    s.name = std::move(name);
    s.kind = StreamKind::Mem;
    s.elem = elem;
    s.base = base;
    s.parent = std::move(parent);
    s.parent2 = std::move(parent2);
    return s;
}

StreamSpec
lin(std::string name, double a, double b, std::string parent = {},
    std::string parent2 = {})
{
    StreamSpec s;
    s.name = std::move(name);
    s.kind = StreamKind::Lin;
    s.linA = a;
    s.linB = b;
    s.parent = std::move(parent);
    s.parent2 = std::move(parent2);
    return s;
}

StreamSpec
ldr(std::string name, const void *base, std::string parent)
{
    StreamSpec s;
    s.name = std::move(name);
    s.kind = StreamKind::Ldr;
    s.base = base;
    s.parent = std::move(parent);
    return s;
}

StreamSpec
fwd(std::string name, std::string source)
{
    StreamSpec s;
    s.name = std::move(name);
    s.kind = StreamKind::Fwd;
    s.fwdOf = std::move(source);
    return s;
}

TuSpec
dns(Index beg, Index end, Index stride = 1)
{
    TuSpec t;
    t.kind = TraversalKind::Dense;
    t.beg = beg;
    t.end = end;
    t.stride = stride;
    return t;
}

TuSpec
rng(std::string begStream, std::string endStream, Index offset = 0,
    Index stride = 1)
{
    TuSpec t;
    t.kind = TraversalKind::Range;
    t.begStream = std::move(begStream);
    t.endStream = std::move(endStream);
    t.offset = offset;
    t.stride = stride;
    return t;
}

TuSpec
idx(std::string begStream, Index size, Index offset = 0,
    Index stride = 1)
{
    TuSpec t;
    t.kind = TraversalKind::Index;
    t.begStream = std::move(begStream);
    t.size = size;
    t.offset = offset;
    t.stride = stride;
    return t;
}

/** The SpMV / PageRank iteration structure, shared by both plans. */
PlanSpec
rowReducePlan(const CsrMatrix &a, const DenseVector &b, DenseVector &x,
              int lanes, Index beg, Index end, Variant variant)
{
    PlanSpec p;
    p.kind = PlanKind::RowReduce;
    p.variant = variant;
    p.lanes = lanes;
    p.beg = beg;
    p.end = end;
    p.operands = {
        {"A", "ij", {LevelFormat::Dense, LevelFormat::Compressed}},
        {"B", "j", {LevelFormat::Dense}},
    };
    p.bind.a = &a;
    p.bind.x = &b;
    p.bind.out = &x;

    if (variant == Variant::P1) {
        LayerSpec rows;
        rows.index = "i";
        rows.mode = GroupMode::BCast;
        TuSpec rowsTu = dns(beg, end);
        rowsTu.streams = {
            mem("row_ptbs", a.ptrs().data(), ElemType::I64),
            mem("row_ptes", a.ptrs().data() + 1, ElemType::I64),
        };
        rowsTu.expectedFiberLen = std::max<Index>(1, end - beg);
        rows.tus.push_back(std::move(rowsTu));
        p.layers.push_back(std::move(rows));

        LayerSpec cols;
        cols.index = "j";
        cols.mode = GroupMode::LockStep;
        for (int r = 0; r < lanes; ++r) {
            TuSpec colsTu = rng("row_ptbs", "row_ptes", r, lanes);
            colsTu.streams = {
                mem("col_idxs", a.idxs().data(), ElemType::I64),
                mem("nnz_vals", a.vals().data(), ElemType::F64),
                mem("vec_vals", b.data(), ElemType::F64, "col_idxs"),
            };
            colsTu.expectedFiberLen = std::max<Index>(
                2, a.nnz() / std::max<Index>(1, a.rows() * lanes));
            cols.tus.push_back(std::move(colsTu));
        }
        p.layers.push_back(std::move(cols));

        p.groupStreams = {
            {"nnz", 1, "nnz_vals", ElemType::F64},
            {"vec", 1, "vec_vals", ElemType::F64},
        };
        p.addCallback("ri", 1, CallbackEvent::GroupIte, {"nnz", "vec"},
                      ComputeKind::DotAccumulate);
        p.addCallback("re", 1, CallbackEvent::GroupEnd, {},
                      ComputeKind::RowStore);
    } else {
        // P0: each lane owns every lanes-th row end-to-end.
        LayerSpec rows;
        rows.index = "i";
        rows.mode = GroupMode::LockStep;
        LayerSpec cols;
        cols.index = "j";
        cols.mode = GroupMode::LockStep;
        for (int r = 0; r < lanes; ++r) {
            TuSpec rowsTu = dns(beg + r, end, lanes);
            rowsTu.streams = {
                mem("row_ptbs", a.ptrs().data(), ElemType::I64),
                mem("row_ptes", a.ptrs().data() + 1, ElemType::I64),
            };
            rows.tus.push_back(std::move(rowsTu));

            TuSpec colsTu = rng("row_ptbs", "row_ptes");
            colsTu.streams = {
                mem("col_idxs", a.idxs().data(), ElemType::I64),
                mem("nnz_vals", a.vals().data(), ElemType::F64),
                mem("vec_vals", b.data(), ElemType::F64, "col_idxs"),
            };
            cols.tus.push_back(std::move(colsTu));
        }
        p.layers.push_back(std::move(rows));
        p.layers.push_back(std::move(cols));

        p.groupStreams = {
            {"rows", 0, kIteStream, ElemType::I64},
            {"nnz", 1, "nnz_vals", ElemType::F64},
            {"vec", 1, "vec_vals", ElemType::F64},
        };
        p.addCallback("row", 0, CallbackEvent::GroupIte,
                      {"rows", kMskStream}, ComputeKind::MergeRowLatch);
        p.addCallback("ri", 1, CallbackEvent::GroupIte,
                      {"nnz", "vec", kMskStream},
                      ComputeKind::DotAccumulate);
        p.addCallback("re", 1, CallbackEvent::GroupEnd, {kMskStream},
                      ComputeKind::RowStore);
    }
    return p;
}

} // namespace

PlanSpec
spmvPlan(const CsrMatrix &a, const DenseVector &b, DenseVector &x,
         int lanes, Index beg, Index end, Variant variant)
{
    PlanSpec p = rowReducePlan(a, b, x, lanes, beg, end, variant);
    p.name = variant == Variant::P0 ? "SpMV P0" : "SpMV P1";
    p.einsum = "Z(i) = A(i,j; csr) * B(j; dense)";
    p.formats = "A=CSR";
    p.trace.pcs = {1, 2};
    p.trace.headerIop = true;
    return p;
}

PlanSpec
pagerankPlan(const CsrMatrix &a, const DenseVector &contrib,
             DenseVector &x, double damping, int lanes, Index beg,
             Index end)
{
    PlanSpec p =
        rowReducePlan(a, contrib, x, lanes, beg, end, Variant::P1);
    p.name = "PageRank";
    p.einsum = "Z(i) = beta + alpha * A(i,j; csr) * X(j; dense)";
    p.formats = "A=CSR";
    p.operands[1].name = "X"; // the einsum names the vector X
    p.bind.rowUpdate = true;
    p.bind.scale = damping;
    p.bind.bias = (1.0 - damping) / static_cast<double>(a.rows());
    p.trace.pcs = {50, 51};
    p.trace.headerIop = false;
    return p;
}

PlanSpec
spmspmPlan(const CsrMatrix &a, const CsrMatrix &b, int lanes, Index beg,
           Index end)
{
    PlanSpec p;
    p.name = "SpMSpM P2";
    p.einsum = "Z(i,j; csr) = A(i,k; csr) * B(k,j; csr)";
    p.formats = "A,B,Z=CSR";
    p.kind = PlanKind::WorkspaceSpGEMM;
    p.variant = Variant::P2;
    p.lanes = lanes;
    p.beg = beg;
    p.end = end;
    p.operands = {
        {"A", "ik", {LevelFormat::Dense, LevelFormat::Compressed}},
        {"B", "kj", {LevelFormat::Dense, LevelFormat::Compressed}},
    };
    p.bind.a = &a;
    p.bind.b = &b;
    p.trace.pcs = {10, 11, 12, 13, 14, 15};

    LayerSpec rows;
    rows.index = "i";
    rows.mode = GroupMode::Single;
    TuSpec rowsTu = dns(beg, end);
    rowsTu.streams = {
        mem("a_ptbs", a.ptrs().data(), ElemType::I64),
        mem("a_ptes", a.ptrs().data() + 1, ElemType::I64),
    };
    rowsTu.expectedFiberLen = std::max<Index>(1, end - beg);
    rows.tus.push_back(std::move(rowsTu));
    p.layers.push_back(std::move(rows));

    // k loop over A row i; chained lookup of B's row pointers.
    LayerSpec ks;
    ks.index = "k";
    ks.mode = GroupMode::BCast;
    TuSpec ksTu = rng("a_ptbs", "a_ptes");
    ksTu.streams = {
        mem("a_idxs", a.idxs().data(), ElemType::I64),
        mem("a_vals", a.vals().data(), ElemType::F64),
        mem("b_ptbs", b.ptrs().data(), ElemType::I64, "a_idxs"),
        mem("b_ptes", b.ptrs().data() + 1, ElemType::I64, "a_idxs"),
    };
    ksTu.expectedFiberLen = std::max<Index>(2, a.nnzPerRow());
    ks.tus.push_back(std::move(ksTu));
    p.layers.push_back(std::move(ks));

    LayerSpec js;
    js.index = "j";
    js.mode = GroupMode::LockStep;
    for (int r = 0; r < lanes; ++r) {
        TuSpec jsTu = rng("b_ptbs", "b_ptes", r, lanes);
        jsTu.streams = {
            mem("b_idxs", b.idxs().data(), ElemType::I64),
            mem("b_vals", b.vals().data(), ElemType::F64),
        };
        jsTu.expectedFiberLen =
            std::max<Index>(2, b.nnzPerRow() / lanes);
        js.tus.push_back(std::move(jsTu));
    }
    p.layers.push_back(std::move(js));

    p.groupStreams = {
        {"a_val", 1, "a_vals", ElemType::F64},
        {"j", 2, "b_idxs", ElemType::I64},
        {"b_val", 2, "b_vals", ElemType::F64},
    };
    p.addCallback("set_a", 1, CallbackEvent::GroupIte, {"a_val"},
                  ComputeKind::LatchScalar);
    p.addCallback("flush", 1, CallbackEvent::GroupEnd, {},
                  ComputeKind::WorkspaceFlush);
    p.addCallback("acc", 2, CallbackEvent::GroupIte, {"j", "b_val"},
                  ComputeKind::WorkspaceAccum);
    return p;
}

PlanSpec
spkaddPlan(const std::vector<DcsrMatrix> &parts, Index beg, Index end)
{
    TMU_ASSERT(parts.size() >= 2, "SpKAdd needs at least two inputs");
    PlanSpec p;
    p.name = "SpKAdd";
    p.einsum = "Z(i,j; dcsr) = sum_k A^k(i,j; dcsr)";
    p.formats = "A^k,Z=DCSR";
    p.kind = PlanKind::KWayMerge;
    p.variant = Variant::P1;
    p.lanes = static_cast<int>(parts.size());
    p.beg = beg;
    p.end = end;
    p.operands = {
        {"A^k", "ij",
         {LevelFormat::Compressed, LevelFormat::Compressed}},
    };
    p.bind.parts = &parts;
    p.trace.pcs = {21, 26, 27, 28};

    LayerSpec rows;
    rows.index = "i";
    rows.mode = GroupMode::DisjMrg;
    LayerSpec cols;
    cols.index = "j";
    cols.mode = GroupMode::DisjMrg;
    for (const DcsrMatrix &mat : parts) {
        // Stored-row span of this input inside [beg, end).
        const auto rb = std::lower_bound(mat.rowIdxs().begin(),
                                         mat.rowIdxs().end(), beg) -
                        mat.rowIdxs().begin();
        const auto re = std::lower_bound(mat.rowIdxs().begin(),
                                         mat.rowIdxs().end(), end) -
                        mat.rowIdxs().begin();

        TuSpec rowsTu =
            dns(static_cast<Index>(rb), static_cast<Index>(re));
        rowsTu.streams = {
            mem("row_idxs", mat.rowIdxs().data(), ElemType::I64),
            mem("row_ptbs", mat.rowPtrs().data(), ElemType::I64),
            mem("row_ptes", mat.rowPtrs().data() + 1, ElemType::I64),
        };
        rowsTu.mergeKey = "row_idxs";
        rowsTu.expectedFiberLen =
            std::max<Index>(1, static_cast<Index>(re - rb));
        rows.tus.push_back(std::move(rowsTu));

        TuSpec colsTu = rng("row_ptbs", "row_ptes");
        colsTu.streams = {
            mem("col_idxs", mat.colIdxs().data(), ElemType::I64),
            mem("vals", mat.vals().data(), ElemType::F64),
        };
        colsTu.mergeKey = "col_idxs";
        colsTu.expectedFiberLen = std::max<Index>(
            2, mat.nnz() / std::max<Index>(1, mat.numStoredRows()));
        cols.tus.push_back(std::move(colsTu));
    }
    p.layers.push_back(std::move(rows));
    p.layers.push_back(std::move(cols));

    p.groupStreams = {
        {"row", 0, "row_idxs", ElemType::I64},
        {"col", 1, "col_idxs", ElemType::I64},
        {"val", 1, "vals", ElemType::F64},
    };
    p.addCallback("row", 0, CallbackEvent::GroupIte, {"row"},
                  ComputeKind::MergeRowLatch);
    p.addCallback("col", 1, CallbackEvent::GroupIte,
                  {"col", "val", kMskStream},
                  ComputeKind::MergeLaneReduce);
    p.addCallback("row_end", 1, CallbackEvent::GroupEnd, {},
                  ComputeKind::MergeRowEnd);
    return p;
}

PlanSpec
tricountPlan(const CsrMatrix &l, Index beg, Index end)
{
    PlanSpec p;
    p.name = "TriangleCount";
    p.einsum = "c = L(i,k; csr) * L(k,j; csr) * L(i,j; csr)";
    p.formats = "L=CSR";
    p.kind = PlanKind::Intersect;
    p.variant = Variant::P1;
    p.lanes = 2;
    p.beg = beg;
    p.end = end;
    p.operands = {
        {"L", "ij", {LevelFormat::Dense, LevelFormat::Compressed}},
    };
    p.bind.a = &l;
    p.trace.pcs = {60, 61, 62, 63};

    LayerSpec rows;
    rows.index = "i";
    rows.mode = GroupMode::Single;
    TuSpec rowsTu = dns(beg, end);
    rowsTu.streams = {
        mem("l_ptbs", l.ptrs().data(), ElemType::I64),
        mem("l_ptes", l.ptrs().data() + 1, ElemType::I64),
    };
    rowsTu.expectedFiberLen = std::max<Index>(1, end - beg);
    rows.tus.push_back(std::move(rowsTu));
    p.layers.push_back(std::move(rows));

    // k loop over row i's neighbours; forward row i's bounds rightward
    // and chase row k's bounds.
    LayerSpec ks;
    ks.index = "k";
    ks.mode = GroupMode::BCast;
    TuSpec ksTu = rng("l_ptbs", "l_ptes");
    ksTu.streams = {
        mem("l_idxs", l.idxs().data(), ElemType::I64),
        mem("k_ptbs", l.ptrs().data(), ElemType::I64, "l_idxs"),
        mem("k_ptes", l.ptrs().data() + 1, ElemType::I64, "l_idxs"),
        fwd("fwd_ptbs", "l_ptbs"),
        fwd("fwd_ptes", "l_ptes"),
    };
    ksTu.expectedFiberLen = std::max<Index>(2, l.nnzPerRow());
    ks.tus.push_back(std::move(ksTu));
    p.layers.push_back(std::move(ks));

    // Conjunctive merge of row i (lane 0) and row k (lane 1).
    LayerSpec merge;
    merge.index = "j";
    merge.mode = GroupMode::ConjMrg;
    TuSpec rowI = rng("fwd_ptbs", "fwd_ptes");
    rowI.streams = {mem("n_i", l.idxs().data(), ElemType::I64)};
    rowI.mergeKey = "n_i";
    rowI.expectedFiberLen = std::max<Index>(2, l.nnzPerRow());
    merge.tus.push_back(std::move(rowI));
    TuSpec rowK = rng("k_ptbs", "k_ptes");
    rowK.streams = {mem("n_k", l.idxs().data(), ElemType::I64)};
    rowK.mergeKey = "n_k";
    rowK.expectedFiberLen = std::max<Index>(2, l.nnzPerRow());
    merge.tus.push_back(std::move(rowK));
    p.layers.push_back(std::move(merge));

    p.addCallback("hit", 2, CallbackEvent::GroupIte, {},
                  ComputeKind::CountHit);
    return p;
}

namespace {

/** The shared per-lane COO nonzero stream set of the MTTKRP plans. */
std::vector<StreamSpec>
mttkrpNnzStreams(const CooTensor &t, const DenseMatrix &z, Index rank)
{
    return {
        mem("i", t.idxs(0).data(), ElemType::I64),
        mem("k", t.idxs(1).data(), ElemType::I64),
        mem("l", t.idxs(2).data(), ElemType::I64),
        mem("v", t.vals().data(), ElemType::F64),
        lin("rowB", static_cast<double>(rank), 0.0, "k"),
        lin("negRowB", -static_cast<double>(rank), 0.0, "k"),
        lin("deltaCB", static_cast<double>(rank), 0.0, "l", "negRowB"),
        lin("rowZ", static_cast<double>(rank), 0.0, "i"),
        ldr("zAddr", z.data(), "rowZ"),
    };
}

} // namespace

PlanSpec
mttkrpPlan(const CooTensor &t, const DenseMatrix &b,
           const DenseMatrix &c, DenseMatrix &z, int lanes, Index beg,
           Index end, Variant variant)
{
    TMU_ASSERT(t.order() == 3 && b.cols() == c.cols());
    const Index rank = b.cols();
    PlanSpec p;
    p.name = variant == Variant::P1 ? "MTTKRP P1" : "MTTKRP P2";
    p.einsum = "Z(i,j) = A(i,k,l; coo) * B(k,j; dense) * C(l,j; dense)";
    p.formats = "A=COO";
    p.kind = PlanKind::CooRankFma;
    p.variant = variant;
    p.lanes = lanes;
    p.beg = beg;
    p.end = end;
    p.operands = {
        {"A", "ikl",
         {LevelFormat::Singleton, LevelFormat::Singleton,
          LevelFormat::Singleton}},
        {"B", "kj", {LevelFormat::Dense, LevelFormat::Dense}},
        {"C", "lj", {LevelFormat::Dense, LevelFormat::Dense}},
    };
    p.bind.t = &t;
    p.bind.bm = &b;
    p.bind.cm = &c;
    p.bind.z = &z;
    p.trace.pcs = {30, 31};

    LayerSpec nnz;
    nnz.index = "p";
    nnz.mode = variant == Variant::P1 ? GroupMode::LockStep
                                      : GroupMode::BCast;
    LayerSpec js;
    js.index = "j";
    js.mode = GroupMode::LockStep;

    if (variant == Variant::P1) {
        for (int r = 0; r < lanes; ++r) {
            TuSpec nnzTu = dns(beg + r, end, lanes);
            nnzTu.streams = mttkrpNnzStreams(t, z, rank);
            nnzTu.expectedFiberLen =
                std::max<Index>(1, (end - beg) / lanes);
            nnz.tus.push_back(std::move(nnzTu));

            TuSpec jsTu = idx("rowB", rank);
            jsTu.streams = {
                fwd("dCB", "deltaCB"),
                mem("B", b.data(), ElemType::F64),
                mem("C", c.data(), ElemType::F64, "", "dCB"),
            };
            jsTu.expectedFiberLen = rank;
            js.tus.push_back(std::move(jsTu));
        }
    } else {
        TuSpec nnzTu = dns(beg, end);
        nnzTu.streams = mttkrpNnzStreams(t, z, rank);
        nnzTu.expectedFiberLen = std::max<Index>(1, end - beg);
        nnz.tus.push_back(std::move(nnzTu));

        for (int r = 0; r < lanes; ++r) {
            TuSpec jsTu = idx("rowB", rank, r, lanes);
            jsTu.streams = {
                fwd("dCB", "deltaCB"),
                fwd("nB", "negRowB"),
                mem("B", b.data(), ElemType::F64),
                mem("C", c.data(), ElemType::F64, "", "dCB"),
                lin("j", 1.0, 0.0, "", "nB"),
            };
            jsTu.expectedFiberLen = std::max<Index>(1, rank / lanes);
            js.tus.push_back(std::move(jsTu));
        }
    }
    p.layers.push_back(std::move(nnz));
    p.layers.push_back(std::move(js));

    if (variant == Variant::P1) {
        p.groupStreams = {
            {"v", 0, "v", ElemType::F64},
            {"z", 0, "zAddr", ElemType::I64},
            {"B", 1, "B", ElemType::F64},
            {"C", 1, "C", ElemType::F64},
        };
        p.addCallback("nnz", 0, CallbackEvent::GroupIte,
                      {"v", "z", kMskStream}, ComputeKind::LatchLanes);
        p.addCallback("j", 1, CallbackEvent::GroupIte,
                      {"B", "C", kMskStream},
                      ComputeKind::RankFmaScatter);
    } else {
        p.groupStreams = {
            {"v", 0, "v", ElemType::F64},
            {"z", 0, "zAddr", ElemType::I64},
            {"j", 1, "j", ElemType::I64},
            {"B", 1, "B", ElemType::F64},
            {"C", 1, "C", ElemType::F64},
        };
        p.addCallback("nnz", 0, CallbackEvent::GroupIte, {"v", "z"},
                      ComputeKind::LatchNnzAddr);
        p.addCallback("j", 1, CallbackEvent::GroupIte, {"j", "B", "C"},
                      ComputeKind::RankFmaVector);
    }
    return p;
}

} // namespace tmu::plan
