/**
 * @file
 * Sparse Tensor Times Vector: Z_ij = A_ijk * B_k, A in CSF
 * (Table 4 row SpTTV). The output is sparse in (i, j).
 */

#pragma once

#include <vector>

#include "tensor/csf.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/** One output entry of SpTTV/SpTTM: the (i, j) position. */
struct Coord2
{
    Index i = 0;
    Index j = 0;
    bool operator==(const Coord2 &) const = default;
};

/** Sparse-by-(i,j) result of SpTTV. */
struct SpttvResult
{
    std::vector<Coord2> coords;
    std::vector<Value> vals;
};

/** Reference SpTTV: one value per (i, j) fiber of A. */
SpttvResult spttvRef(const tensor::CsfTensor &a,
                     const tensor::DenseVector &b);

} // namespace tmu::kernels
