#include "spttm.hpp"

#include "common/log.hpp"

namespace tmu::kernels {

SpttmResult
spttmRef(const tensor::CsfTensor &a, const tensor::DenseMatrix &b)
{
    TMU_ASSERT(a.order() == 3 && a.dim(2) == b.rows());
    const Index l = b.cols();

    // Count (i, j) fibers first to size the dense block.
    Index fibers = 0;
    for (Index ni = 0; ni < a.numNodes(0); ++ni)
        fibers += a.childEnd(0, ni) - a.childBegin(0, ni);

    SpttmResult out;
    out.rows = tensor::DenseMatrix(fibers, l, 0.0);
    Index t = 0;
    for (Index ni = 0; ni < a.numNodes(0); ++ni) {
        const Index i = a.nodeCoord(0, ni);
        for (Index nj = a.childBegin(0, ni); nj < a.childEnd(0, ni);
             ++nj) {
            out.coords.push_back({i, a.nodeCoord(1, nj)});
            Value *zr = out.rows.row(t);
            for (Index nk = a.childBegin(1, nj); nk < a.childEnd(1, nj);
                 ++nk) {
                const Value v = a.vals()[static_cast<size_t>(nk)];
                const Value *br = b.row(a.nodeCoord(2, nk));
                for (Index c = 0; c < l; ++c)
                    zr[c] += v * br[c];
            }
            ++t;
        }
    }
    return out;
}

} // namespace tmu::kernels
