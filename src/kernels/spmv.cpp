#include "spmv.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::SimdConfig;
using sim::Trace;
using sim::addrOf;
using tensor::CsrMatrix;
using tensor::DenseVector;

tensor::DenseVector
spmvRef(const CsrMatrix &a, const DenseVector &b)
{
    TMU_ASSERT(a.cols() == b.size());
    DenseVector x(a.rows());
    for (Index r = 0; r < a.rows(); ++r) {
        Value sum = 0.0;
        for (Index p = a.rowBegin(r); p < a.rowEnd(r); ++p) {
            sum += a.vals()[static_cast<size_t>(p)] *
                   b[a.idxs()[static_cast<size_t>(p)]];
        }
        x[r] = sum;
    }
    return x;
}

namespace {

/** Branch-predictor slots for the SpMV loops. */
enum SpmvPc : std::uint16_t { kPcOuter = 1, kPcInner = 2 };

} // namespace

Trace
traceSpmv(const CsrMatrix &a, const DenseVector &b, DenseVector &x,
          Index rowBegin, Index rowEnd, SimdConfig simd)
{
    TMU_ASSERT(a.cols() == b.size() && x.size() == a.rows());
    TMU_ASSERT(rowBegin >= 0 && rowEnd <= a.rows());
    const int vl = simd.lanes();

    for (Index r = rowBegin; r < rowEnd; ++r) {
        // Row-pointer loads (outer loop header, Fig. 4 lines 3-4).
        co_yield MicroOp::load(addrOf(a.ptrs().data(), r), 8);
        co_yield MicroOp::load(addrOf(a.ptrs().data(), r + 1), 8);
        co_yield MicroOp::iop();

        const Index pb = a.rowBegin(r), pe = a.rowEnd(r);
        Value sum = 0.0;
        for (Index p = pb; p < pe; p += vl) {
            const int n = static_cast<int>(std::min<Index>(vl, pe - p));

            // Vector load of column indexes, then of matrix values.
            co_yield MicroOp::load(addrOf(a.idxs().data(), p),
                                   static_cast<std::uint8_t>(n * 8));
            co_yield MicroOp::load(addrOf(a.vals().data(), p),
                                   static_cast<std::uint8_t>(n * 8));

            // Gather b[idxs]: one element access per lane, each with an
            // address dependency on the idx vector load above.
            Value partial = 0.0;
            for (int lane = 0; lane < n; ++lane) {
                const Index col =
                    a.idxs()[static_cast<size_t>(p + lane)];
                co_yield MicroOp::load(
                    addrOf(b.data(), col), 8,
                    static_cast<std::uint8_t>(lane + 2),
                    addrOf(a.idxs().data(), p + lane));
                partial += a.vals()[static_cast<size_t>(p + lane)] * b[col];
            }
            sum += partial;

            // Vector FMA (2 flops per active lane).
            co_yield MicroOp::flop(static_cast<std::uint16_t>(2 * n));
            co_yield MicroOp::branch(kPcInner, p + vl < pe);
        }

        // Horizontal reduce + result store (inner-loop tail, line 10).
        if (pe > pb)
            co_yield MicroOp::flop(static_cast<std::uint16_t>(vl));
        x[r] = sum;
        co_yield MicroOp::store(addrOf(x.data(), r), 8);
        co_yield MicroOp::branch(kPcOuter, r + 1 < rowEnd);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
