#include "pagerank.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "tensor/convert.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::SimdConfig;
using sim::Trace;
using sim::addrOf;
using tensor::CsrMatrix;
using tensor::DenseVector;

tensor::DenseVector
pagerankRef(const CsrMatrix &a, const PageRankConfig &cfg)
{
    TMU_ASSERT(a.rows() == a.cols());
    const Index n = a.rows();
    const double base = (1.0 - cfg.damping) / static_cast<double>(n);

    // Out-degree of vertex j = nnz of column j = row j (symmetric
    // inputs) — computed from the transpose for generality.
    const CsrMatrix at = tensor::transposeCsr(a);
    DenseVector outdeg(n, 0.0);
    for (Index j = 0; j < n; ++j)
        outdeg[j] = static_cast<Value>(std::max<Index>(1, at.rowNnz(j)));

    DenseVector x(n, 1.0 / static_cast<double>(n));
    DenseVector contrib(n), next(n);
    for (int it = 0; it < cfg.iterations; ++it) {
        for (Index j = 0; j < n; ++j)
            contrib[j] = x[j] / outdeg[j];
        for (Index i = 0; i < n; ++i) {
            Value sum = 0.0;
            for (Index p = a.rowBegin(i); p < a.rowEnd(i); ++p) {
                sum += a.vals()[static_cast<size_t>(p)] *
                       contrib[a.idxs()[static_cast<size_t>(p)]];
            }
            next[i] = base + cfg.damping * sum;
        }
        std::swap(x, next);
    }
    return x;
}

namespace {

enum PrPc : std::uint16_t { kPcOuter = 50, kPcInner = 51 };

} // namespace

Trace
tracePagerankIter(const CsrMatrix &a, const DenseVector &contrib,
                  DenseVector &xNext, double damping, Index rowBegin,
                  Index rowEnd, SimdConfig simd)
{
    const Index n = a.rows();
    const double base = (1.0 - damping) / static_cast<double>(n);
    const int vl = simd.lanes();

    for (Index r = rowBegin; r < rowEnd; ++r) {
        co_yield MicroOp::load(addrOf(a.ptrs().data(), r), 8);
        co_yield MicroOp::load(addrOf(a.ptrs().data(), r + 1), 8);

        const Index pb = a.rowBegin(r), pe = a.rowEnd(r);
        Value sum = 0.0;
        for (Index p = pb; p < pe; p += vl) {
            const int lanes = static_cast<int>(std::min<Index>(vl, pe - p));
            co_yield MicroOp::load(addrOf(a.idxs().data(), p),
                                   static_cast<std::uint8_t>(lanes * 8));
            co_yield MicroOp::load(addrOf(a.vals().data(), p),
                                   static_cast<std::uint8_t>(lanes * 8));
            for (int l = 0; l < lanes; ++l) {
                const Index j = a.idxs()[static_cast<size_t>(p + l)];
                co_yield MicroOp::load(addrOf(contrib.data(), j), 8,
                                       static_cast<std::uint8_t>(l + 2),
                                       addrOf(a.idxs().data(), p + l));
                sum += a.vals()[static_cast<size_t>(p + l)] * contrib[j];
            }
            co_yield MicroOp::flop(static_cast<std::uint16_t>(2 * lanes));
            co_yield MicroOp::branch(kPcInner, p + vl < pe);
        }
        // Weight update (not TMU-accelerated): base + d * sum.
        if (pe > pb)
            co_yield MicroOp::flop(static_cast<std::uint16_t>(vl));
        co_yield MicroOp::flop(2);
        xNext[r] = base + damping * sum;
        co_yield MicroOp::store(addrOf(xNext.data(), r), 8);
        co_yield MicroOp::branch(kPcOuter, r + 1 < rowEnd);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
