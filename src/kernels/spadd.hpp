/**
 * @file
 * Sparse matrix addition: SpAdd (Z = A + B, CSR) and SpKAdd
 * (Z = sum of K hypersparse DCSR matrices). The merge-stage proxies of
 * the evaluation (paper Secs. 3 and 6).
 */

#pragma once

#include <vector>

#include "sim/microop.hpp"
#include "tensor/csr.hpp"
#include "tensor/dcsr.hpp"

namespace tmu::kernels {

/** Reference SpAdd: Z = A + B via per-row disjunctive merge. */
tensor::CsrMatrix spaddRef(const tensor::CsrMatrix &a,
                           const tensor::CsrMatrix &b);

/** Reference SpKAdd: Z = sum_k A^k, hierarchical disjunctive merge. */
tensor::CsrMatrix spkaddRef(const std::vector<tensor::DcsrMatrix> &inputs);

/**
 * Scalar baseline SpAdd over rows [rowBegin, rowEnd): the classic
 * while/if-else two-way merge with data-dependent branches (paper
 * Sec. 2.4). Appends to the caller's output arrays.
 */
sim::Trace traceSpadd(const tensor::CsrMatrix &a,
                      const tensor::CsrMatrix &b,
                      std::vector<Index> &outIdxs,
                      std::vector<Value> &outVals,
                      std::vector<Index> &outRowNnz, Index rowBegin,
                      Index rowEnd, sim::SimdConfig simd);

/**
 * Baseline SpKAdd over output rows [rowBegin, rowEnd): K-way heap-less
 * min-scan merge of the K row fibers with the same row index, the
 * pattern of Hussain et al. (paper [27]). Appends to the caller's
 * output arrays.
 */
sim::Trace traceSpkadd(const std::vector<tensor::DcsrMatrix> &inputs,
                       std::vector<Index> &outIdxs,
                       std::vector<Value> &outVals,
                       std::vector<Index> &outRowNnz, Index rowBegin,
                       Index rowEnd, sim::SimdConfig simd);

} // namespace tmu::kernels
