/**
 * @file
 * Sparse matrix - sparse vector multiplication, Z_i = A_ij * B_j with
 * both operands compressed (conjunctive row merge, Table 4 row SpMSpV).
 */

#pragma once

#include "tensor/csr.hpp"
#include "tensor/dense.hpp"
#include "tensor/sparse_vector.hpp"

namespace tmu::kernels {

/** Reference SpMSpV: dense output, conjunctive merge per row. */
tensor::DenseVector spmspvRef(const tensor::CsrMatrix &a,
                              const tensor::SparseVector &b);

} // namespace tmu::kernels
