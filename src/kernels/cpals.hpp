/**
 * @file
 * Canonical Polyadic decomposition by Alternating Least Squares on an
 * order-3 COO tensor (GenTen-style, paper [46][47]). Each mode update
 * is an MTTKRP followed by a gram-matrix solve — the real-world
 * workload where partial results must be evaluated on the core every
 * iteration (paper Sec. 8).
 */

#pragma once

#include <array>

#include "sim/microop.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/** CP-ALS configuration. */
struct CpalsConfig
{
    Index rank = 16;
    int iterations = 2;
    std::uint64_t seed = 7;
};

/** The three factor matrices of an order-3 CP decomposition. */
using CpFactors = std::array<tensor::DenseMatrix, 3>;

/** Deterministic random initial factors for @p a. */
CpFactors cpalsInit(const tensor::CooTensor &a, const CpalsConfig &cfg);

/** Reference CP-ALS: @p cfg.iterations full sweeps over the 3 modes. */
CpFactors cpalsRef(const tensor::CooTensor &a, const CpalsConfig &cfg);

/**
 * One reference ALS mode update in place: factors[mode] =
 * mttkrp(a, ...) solved against the hadamard of the other grams.
 */
void cpalsUpdateMode(const tensor::CooTensor &a, CpFactors &factors,
                     int mode);

/**
 * Relative reconstruction improvement check helper: squared Frobenius
 * norm of the tensor minus the current model, evaluated at the stored
 * nonzeros only (cheap fit proxy for tests).
 */
double cpalsFitAtNnz(const tensor::CooTensor &a, const CpFactors &f);

/**
 * Micro-op stream of the dense (non-MTTKRP) part of one mode update as
 * executed by one core owning @p rowsOwned factor rows: gram products,
 * hadamard, and the per-row Cholesky solves.
 */
sim::Trace traceCpalsDense(Index rank, Index rowsOwned,
                           sim::SimdConfig simd);

} // namespace tmu::kernels
