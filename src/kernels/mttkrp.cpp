#include "mttkrp.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::SimdConfig;
using sim::Trace;
using sim::addrOf;
using tensor::CooTensor;
using tensor::DenseMatrix;

tensor::DenseMatrix
mttkrpRef(const CooTensor &a, const DenseMatrix &b, const DenseMatrix &c,
          int mode)
{
    TMU_ASSERT(a.order() == 3 && mode >= 0 && mode < 3);
    const int m1 = mode == 0 ? 1 : 0;
    const int m2 = mode == 2 ? 1 : 2;
    TMU_ASSERT(b.rows() == a.dim(m1) && c.rows() == a.dim(m2));
    TMU_ASSERT(b.cols() == c.cols());
    const Index rank = b.cols();

    DenseMatrix z(a.dim(mode), rank, 0.0);
    for (Index p = 0; p < a.nnz(); ++p) {
        const Index i = a.idx(mode, p);
        const Value *bk = b.row(a.idx(m1, p));
        const Value *cl = c.row(a.idx(m2, p));
        Value *zi = z.row(i);
        const Value v = a.val(p);
        for (Index j = 0; j < rank; ++j)
            zi[j] += v * bk[j] * cl[j];
    }
    return z;
}

namespace {

enum MttkrpPc : std::uint16_t { kPcNnz = 30, kPcRank = 31 };

} // namespace

Trace
traceMttkrp(const CooTensor &a, const DenseMatrix &b,
            const DenseMatrix &c, DenseMatrix &z, Index nnzBegin,
            Index nnzEnd, SimdConfig simd)
{
    TMU_ASSERT(a.order() == 3);
    TMU_ASSERT(b.cols() == c.cols() && z.cols() == b.cols());
    const Index rank = b.cols();
    const int vl = simd.lanes();

    for (Index p = nnzBegin; p < nnzEnd; ++p) {
        // Coordinate + value loads (COO singleton levels).
        co_yield MicroOp::load(addrOf(a.idxs(0).data(), p), 8);
        co_yield MicroOp::load(addrOf(a.idxs(1).data(), p), 8);
        co_yield MicroOp::load(addrOf(a.idxs(2).data(), p), 8);
        co_yield MicroOp::load(addrOf(a.vals().data(), p), 8);

        const Index i = a.idx(0, p);
        const Index k = a.idx(1, p);
        const Index l = a.idx(2, p);
        const Value v = a.val(p);
        const Value *bk = b.row(k);
        const Value *cl = c.row(l);
        Value *zi = z.row(i);

        // Rank loop, vectorized: B and C row chunks, Z read-modify-write.
        // Factor-row addresses depend on the coordinate loads above:
        // chunk c starts 4 + 6c ops after the 4 coordinate loads.
        int chunk = 0;
        for (Index j = 0; j < rank; j += vl, ++chunk) {
            const int n = static_cast<int>(std::min<Index>(vl, rank - j));
            const int back = 6 * chunk;
            co_yield MicroOp::load(
                addrOf(b.data(), k * rank + j),
                static_cast<std::uint8_t>(n * 8),
                static_cast<std::uint8_t>(std::min(back + 3, 255)));
            co_yield MicroOp::load(
                addrOf(c.data(), l * rank + j),
                static_cast<std::uint8_t>(n * 8),
                static_cast<std::uint8_t>(std::min(back + 3, 255)));
            co_yield MicroOp::load(
                addrOf(z.data(), i * rank + j),
                static_cast<std::uint8_t>(n * 8),
                static_cast<std::uint8_t>(std::min(back + 6, 255)));
            co_yield MicroOp::flop(static_cast<std::uint16_t>(3 * n));
            for (int lane = 0; lane < n; ++lane)
                zi[j + lane] += v * bk[j + lane] * cl[j + lane];
            co_yield MicroOp::store(addrOf(z.data(), i * rank + j),
                                    static_cast<std::uint8_t>(n * 8));
            co_yield MicroOp::branch(kPcRank, j + vl < rank);
        }
        co_yield MicroOp::branch(kPcNnz, p + 1 < nnzEnd);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
