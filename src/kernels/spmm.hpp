/**
 * @file
 * Sparse matrix - dense matrix multiplication, Z_ij = A_ik * B_kj
 * (Table 4 rows SpMM P0/P1/P2).
 */

#pragma once

#include "tensor/csr.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/** Reference SpMM: Z = A * B, A CSR, B/Z row-major dense. */
tensor::DenseMatrix spmmRef(const tensor::CsrMatrix &a,
                            const tensor::DenseMatrix &b);

} // namespace tmu::kernels
