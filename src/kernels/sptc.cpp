#include "sptc.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::Trace;
using sim::addrOf;
using tensor::CsfTensor;

namespace {

/** Position of coordinate @p c in idxs[range), or kInvalidIndex. */
Index
findCoord(const std::vector<Index> &idxs, Index lo, Index hi, Index c)
{
    const auto beg = idxs.begin() + lo;
    const auto end = idxs.begin() + hi;
    const auto it = std::lower_bound(beg, end, c);
    if (it != end && *it == c)
        return static_cast<Index>(it - idxs.begin());
    return kInvalidIndex;
}

enum SptcPc : std::uint16_t {
    kPcRoot = 40,
    kPcK = 41,
    kPcL = 42,
    kPcSearch = 43,
    kPcHit = 44,
    kPcJ = 45,
};

/**
 * Emit a Sparta-style hash-table probe over idxs[lo, hi): compute the
 * hash, load the bucket head, then chase to the entry — two dependent
 * loads and a hit/collision branch. The probed addresses land inside
 * the coordinate array (same locality class as the real table).
 */
Trace
searchTrace(const std::vector<Index> &idxs, Index lo, Index hi, Index c)
{
    if (lo >= hi) {
        co_yield MicroOp::halt();
        co_return;
    }
    // Deterministic pseudo-probe position within the range.
    const Index span = hi - lo;
    const Index slot = lo + ((c * 0x9E3779B1) % span + span) % span;
    co_yield MicroOp::iop(); // hash
    // Bucket head, then an average collision chain of two entries,
    // each probe's address produced by the previous load.
    co_yield MicroOp::load(addrOf(idxs.data(), slot), 8, 1);
    co_yield MicroOp::iop();
    co_yield MicroOp::branch(kPcSearch, (c & 1) != 0);
    co_yield MicroOp::load(addrOf(idxs.data(), (slot + 1) % hi), 8, 3);
    co_yield MicroOp::iop();
    co_yield MicroOp::branch(kPcSearch, (c & 2) != 0);
    co_yield MicroOp::load(
        addrOf(idxs.data(), (slot + 2) % hi), 8, 3);
    co_yield MicroOp::iop();
    co_yield MicroOp::halt();
}

} // namespace

std::vector<Index>
sptcSymbolicRowsRef(const CsfTensor &a, const CsfTensor &b)
{
    TMU_ASSERT(a.order() == 3 && b.order() == 3);
    TMU_ASSERT(a.dim(1) == b.dim(1) && a.dim(2) == b.dim(0));

    std::vector<Index> rowNnz(static_cast<size_t>(a.numNodes(0)), 0);
    std::vector<bool> seen(static_cast<size_t>(b.dim(2)), false);
    std::vector<Index> touched;

    for (Index ri = 0; ri < a.numNodes(0); ++ri) {
        touched.clear();
        for (Index nk = a.childBegin(0, ri); nk < a.childEnd(0, ri);
             ++nk) {
            const Index k = a.nodeCoord(1, nk);
            for (Index nl = a.childBegin(1, nk); nl < a.childEnd(1, nk);
                 ++nl) {
                const Index l = a.nodeCoord(2, nl);
                // B subtree (l, k, *).
                const Index bl = findCoord(b.idxs(0), 0, b.numNodes(0), l);
                if (bl == kInvalidIndex)
                    continue;
                const Index bk = findCoord(b.idxs(1), b.childBegin(0, bl),
                                           b.childEnd(0, bl), k);
                if (bk == kInvalidIndex)
                    continue;
                for (Index nj = b.childBegin(1, bk);
                     nj < b.childEnd(1, bk); ++nj) {
                    const auto j =
                        static_cast<size_t>(b.nodeCoord(2, nj));
                    if (!seen[j]) {
                        seen[j] = true;
                        touched.push_back(static_cast<Index>(j));
                    }
                }
            }
        }
        rowNnz[static_cast<size_t>(ri)] =
            static_cast<Index>(touched.size());
        for (Index j : touched)
            seen[static_cast<size_t>(j)] = false;
    }
    return rowNnz;
}

Index
sptcSymbolicRef(const CsfTensor &a, const CsfTensor &b)
{
    Index total = 0;
    for (Index n : sptcSymbolicRowsRef(a, b))
        total += n;
    return total;
}

Trace
traceSptcSymbolic(const CsfTensor &a, const CsfTensor &b,
                  std::vector<Index> &rowNnz, Index rootBegin,
                  Index rootEnd, sim::SimdConfig /*simd*/)
{
    TMU_ASSERT(a.order() == 3 && b.order() == 3);
    TMU_ASSERT(rowNnz.size() == static_cast<size_t>(a.numNodes(0)));

    std::vector<std::uint8_t> seen(static_cast<size_t>(b.dim(2)), 0);
    std::vector<Index> touched;

    for (Index ri = rootBegin; ri < rootEnd; ++ri) {
        touched.clear();
        co_yield MicroOp::load(addrOf(a.ptrs(0).data(), ri), 8);
        co_yield MicroOp::load(addrOf(a.ptrs(0).data(), ri + 1), 8);

        for (Index nk = a.childBegin(0, ri); nk < a.childEnd(0, ri);
             ++nk) {
            const Index k = a.nodeCoord(1, nk);
            co_yield MicroOp::load(addrOf(a.idxs(1).data(), nk), 8);
            co_yield MicroOp::load(addrOf(a.ptrs(1).data(), nk), 8);
            co_yield MicroOp::load(addrOf(a.ptrs(1).data(), nk + 1), 8);

            for (Index nl = a.childBegin(1, nk); nl < a.childEnd(1, nk);
                 ++nl) {
                const Index l = a.nodeCoord(2, nl);
                co_yield MicroOp::load(addrOf(a.idxs(2).data(), nl), 8);

                // Binary search for B root l.
                auto s0 = searchTrace(b.idxs(0), 0, b.numNodes(0), l);
                while (s0.next()) {
                    if (s0.value().kind != sim::OpKind::Halt)
                        co_yield s0.value();
                }
                const Index bl = findCoord(b.idxs(0), 0, b.numNodes(0), l);
                co_yield MicroOp::branch(kPcHit, bl != kInvalidIndex);
                if (bl == kInvalidIndex)
                    continue;

                co_yield MicroOp::load(addrOf(b.ptrs(0).data(), bl), 8, 5);
                co_yield MicroOp::load(addrOf(b.ptrs(0).data(), bl + 1),
                                       8, 6);
                auto s1 = searchTrace(b.idxs(1), b.childBegin(0, bl),
                                      b.childEnd(0, bl), k);
                while (s1.next()) {
                    if (s1.value().kind != sim::OpKind::Halt)
                        co_yield s1.value();
                }
                const Index bk = findCoord(b.idxs(1), b.childBegin(0, bl),
                                           b.childEnd(0, bl), k);
                co_yield MicroOp::branch(kPcHit, bk != kInvalidIndex);
                if (bk == kInvalidIndex)
                    continue;

                co_yield MicroOp::load(addrOf(b.ptrs(1).data(), bk), 8, 5);
                co_yield MicroOp::load(addrOf(b.ptrs(1).data(), bk + 1),
                                       8, 6);
                // Union the j fiber into the bitmap workspace.
                for (Index nj = b.childBegin(1, bk);
                     nj < b.childEnd(1, bk); ++nj) {
                    const auto j =
                        static_cast<size_t>(b.nodeCoord(2, nj));
                    co_yield MicroOp::load(addrOf(b.idxs(2).data(), nj),
                                           8);
                    co_yield MicroOp::load(
                        addrOf(seen.data(), static_cast<Index>(j)), 1, 1);
                    const bool fresh = !seen[j];
                    co_yield MicroOp::branch(kPcJ, fresh);
                    if (fresh) {
                        seen[j] = 1;
                        touched.push_back(static_cast<Index>(j));
                        co_yield MicroOp::iop();
                    }
                }
                co_yield MicroOp::branch(kPcL, nl + 1 < a.childEnd(1, nk));
            }
            co_yield MicroOp::branch(kPcK, nk + 1 < a.childEnd(0, ri));
        }
        rowNnz[static_cast<size_t>(ri)] =
            static_cast<Index>(touched.size());
        for (Index j : touched)
            seen[static_cast<size_t>(j)] = false;
        co_yield MicroOp::branch(kPcRoot, ri + 1 < rootEnd);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
