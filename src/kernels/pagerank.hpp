/**
 * @file
 * PageRank (GAP benchmark style, Jacobi/power iteration):
 * Z_i = d * sum_j A_ij * X_j / outdeg_j + (1 - d) / N.
 * Memory-intensive real-world application of the evaluation.
 */

#pragma once

#include "sim/microop.hpp"
#include "tensor/csr.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/** PageRank parameters. */
struct PageRankConfig
{
    int iterations = 3;
    double damping = 0.85;
};

/** Reference PageRank on an adjacency matrix (A_ij = edge j -> i). */
tensor::DenseVector pagerankRef(const tensor::CsrMatrix &a,
                                const PageRankConfig &cfg);

/**
 * One baseline PageRank iteration over rows [rowBegin, rowEnd): an SpMV
 * over the contribution vector plus the weight update (which the TMU
 * does not accelerate; paper Sec. 7.1). contrib must hold
 * x_prev[j]/outdeg[j]; writes xNext.
 */
sim::Trace tracePagerankIter(const tensor::CsrMatrix &a,
                             const tensor::DenseVector &contrib,
                             tensor::DenseVector &xNext, double damping,
                             Index rowBegin, Index rowEnd,
                             sim::SimdConfig simd);

} // namespace tmu::kernels
