#include "spadd.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "tensor/merge.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::SimdConfig;
using sim::Trace;
using sim::addrOf;
using tensor::CsrMatrix;
using tensor::DcsrMatrix;
using tensor::FiberView;

tensor::CsrMatrix
spaddRef(const CsrMatrix &a, const CsrMatrix &b)
{
    TMU_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
    std::vector<Index> ptrs{0};
    std::vector<Index> idxs;
    std::vector<Value> vals;
    for (Index r = 0; r < a.rows(); ++r) {
        tensor::disjunctiveMerge2(a.row(r), b.row(r),
            [&](Index c, LaneMask m, auto getVal) {
                Value v = 0.0;
                if (m.test(0))
                    v += getVal(0);
                if (m.test(1))
                    v += getVal(1);
                idxs.push_back(c);
                vals.push_back(v);
            });
        ptrs.push_back(static_cast<Index>(idxs.size()));
    }
    return CsrMatrix(a.rows(), a.cols(), std::move(ptrs), std::move(idxs),
                     std::move(vals));
}

tensor::CsrMatrix
spkaddRef(const std::vector<DcsrMatrix> &inputs)
{
    TMU_ASSERT(!inputs.empty());
    const Index rows = inputs.front().rows();
    const Index cols = inputs.front().cols();
    for (const auto &m : inputs)
        TMU_ASSERT(m.rows() == rows && m.cols() == cols);

    // Per input, a cursor over its stored rows (hierarchical merge:
    // first the compressed row dimension, then the column fibers).
    std::vector<Index> cursor(inputs.size(), 0);
    std::vector<Index> ptrs{0};
    std::vector<Index> idxs;
    std::vector<Value> vals;

    for (Index r = 0; r < rows; ++r) {
        // Row-level disjunctive step: inputs whose next stored row is r.
        std::vector<FiberView> fibers;
        for (size_t m = 0; m < inputs.size(); ++m) {
            const auto &in = inputs[m];
            if (cursor[m] < in.numStoredRows() &&
                in.storedRowCoord(cursor[m]) == r) {
                fibers.push_back(in.storedRow(cursor[m]));
                ++cursor[m];
            }
        }
        tensor::disjunctiveMerge(std::span<const FiberView>(fibers),
            [&](Index c, LaneMask mask, auto getVal) {
                Value v = 0.0;
                for (unsigned f = 0; f < fibers.size(); ++f) {
                    if (mask.test(f))
                        v += getVal(f);
                }
                idxs.push_back(c);
                vals.push_back(v);
            });
        ptrs.push_back(static_cast<Index>(idxs.size()));
    }
    return CsrMatrix(rows, cols, std::move(ptrs), std::move(idxs),
                     std::move(vals));
}

namespace {

enum SpaddPc : std::uint16_t {
    kPcRow = 20,
    kPcWhich = 21,  //!< data-dependent: which fiber holds the min
    kPcEqual = 22,  //!< data-dependent: coordinate collision
    kPcLoop = 23,
    kPcTailA = 24,
    kPcTailB = 25,
    kPcKActive = 26, //!< data-dependent: lane holds current min (SpKAdd)
    kPcKLoop = 27,
    kPcKRow = 28,
};

} // namespace

Trace
traceSpadd(const CsrMatrix &a, const CsrMatrix &b,
           std::vector<Index> &outIdxs, std::vector<Value> &outVals,
           std::vector<Index> &outRowNnz, Index rowBegin, Index rowEnd,
           SimdConfig /*simd*/)
{
    TMU_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());

    for (Index r = rowBegin; r < rowEnd; ++r) {
        co_yield MicroOp::load(addrOf(a.ptrs().data(), r), 8);
        co_yield MicroOp::load(addrOf(a.ptrs().data(), r + 1), 8);
        co_yield MicroOp::load(addrOf(b.ptrs().data(), r), 8);
        co_yield MicroOp::load(addrOf(b.ptrs().data(), r + 1), 8);

        Index pa = a.rowBegin(r), pb = b.rowBegin(r);
        const Index ea = a.rowEnd(r), eb = b.rowEnd(r);
        Index emitted = 0;

        // while (both fibers have elements): the if-else merge.
        while (pa < ea && pb < eb) {
            const Index ca = a.idxs()[static_cast<size_t>(pa)];
            const Index cb = b.idxs()[static_cast<size_t>(pb)];
            co_yield MicroOp::load(addrOf(a.idxs().data(), pa), 8);
            co_yield MicroOp::load(addrOf(b.idxs().data(), pb), 8);
            co_yield MicroOp::branch(kPcEqual, ca == cb);
            Value v;
            Index c;
            if (ca == cb) {
                co_yield MicroOp::load(addrOf(a.vals().data(), pa), 8);
                co_yield MicroOp::load(addrOf(b.vals().data(), pb), 8);
                co_yield MicroOp::flop(1);
                v = a.vals()[static_cast<size_t>(pa)] +
                    b.vals()[static_cast<size_t>(pb)];
                c = ca;
                ++pa;
                ++pb;
            } else if (ca < cb) {
                co_yield MicroOp::branch(kPcWhich, true);
                co_yield MicroOp::load(addrOf(a.vals().data(), pa), 8);
                v = a.vals()[static_cast<size_t>(pa)];
                c = ca;
                ++pa;
            } else {
                co_yield MicroOp::branch(kPcWhich, false);
                co_yield MicroOp::load(addrOf(b.vals().data(), pb), 8);
                v = b.vals()[static_cast<size_t>(pb)];
                c = cb;
                ++pb;
            }
            outIdxs.push_back(c);
            outVals.push_back(v);
            ++emitted;
            co_yield MicroOp::store(
                addrOf(outVals.data(),
                       static_cast<Index>(outVals.size() - 1)), 8);
            co_yield MicroOp::branch(kPcLoop, pa < ea && pb < eb);
        }
        // Tails: copy the remainder of whichever fiber survives.
        while (pa < ea) {
            co_yield MicroOp::load(addrOf(a.idxs().data(), pa), 8);
            co_yield MicroOp::load(addrOf(a.vals().data(), pa), 8);
            outIdxs.push_back(a.idxs()[static_cast<size_t>(pa)]);
            outVals.push_back(a.vals()[static_cast<size_t>(pa)]);
            ++emitted;
            ++pa;
            co_yield MicroOp::store(
                addrOf(outVals.data(),
                       static_cast<Index>(outVals.size() - 1)), 8);
            co_yield MicroOp::branch(kPcTailA, pa < ea);
        }
        while (pb < eb) {
            co_yield MicroOp::load(addrOf(b.idxs().data(), pb), 8);
            co_yield MicroOp::load(addrOf(b.vals().data(), pb), 8);
            outIdxs.push_back(b.idxs()[static_cast<size_t>(pb)]);
            outVals.push_back(b.vals()[static_cast<size_t>(pb)]);
            ++emitted;
            ++pb;
            co_yield MicroOp::store(
                addrOf(outVals.data(),
                       static_cast<Index>(outVals.size() - 1)), 8);
            co_yield MicroOp::branch(kPcTailB, pb < eb);
        }
        outRowNnz.push_back(emitted);
        co_yield MicroOp::branch(kPcRow, r + 1 < rowEnd);
    }
    co_yield MicroOp::halt();
}

Trace
traceSpkadd(const std::vector<DcsrMatrix> &inputs,
            std::vector<Index> &outIdxs, std::vector<Value> &outVals,
            std::vector<Index> &outRowNnz, Index rowBegin, Index rowEnd,
            SimdConfig /*simd*/)
{
    TMU_ASSERT(!inputs.empty());
    const auto k = inputs.size();

    // Stored-row cursors, advanced to rowBegin first.
    std::vector<Index> rowCur(k, 0);
    for (size_t m = 0; m < k; ++m) {
        const auto &in = inputs[m];
        while (rowCur[m] < in.numStoredRows() &&
               in.storedRowCoord(rowCur[m]) < rowBegin) {
            ++rowCur[m];
        }
    }

    std::vector<Index> pos(k), end(k);
    for (Index r = rowBegin; r < rowEnd; ++r) {
        // Row-level merge: gather each input's next stored-row
        // coordinate, compare against r as a vector, load the row
        // pointers of the matching lanes.
        int activeLanes = 0;
        for (size_t m = 0; m < k; ++m) {
            const auto &in = inputs[m];
            if (rowCur[m] < in.numStoredRows()) {
                co_yield MicroOp::load(
                    addrOf(in.rowIdxs().data(), rowCur[m]), 8);
            }
            const bool active = rowCur[m] < in.numStoredRows() &&
                                in.storedRowCoord(rowCur[m]) == r;
            if (active) {
                co_yield MicroOp::load(
                    addrOf(in.rowPtrs().data(), rowCur[m]), 8);
                co_yield MicroOp::load(
                    addrOf(in.rowPtrs().data(), rowCur[m] + 1), 8);
                pos[m] = in.rowPtrs()[static_cast<size_t>(rowCur[m])];
                end[m] = in.rowPtrs()[static_cast<size_t>(rowCur[m] + 1)];
                ++rowCur[m];
                ++activeLanes;
            } else {
                pos[m] = end[m] = 0;
            }
        }
        co_yield MicroOp::iop(); // vector compare-to-mask
        co_yield MicroOp::branch(kPcKActive, activeLanes > 0);

        // Column-level K-way merge, SVE-assisted (Hussain et al.):
        // gather the K head coordinates, a vector-min finds the
        // minimum and its lane mask branchlessly; only the advance
        // decision and the loop itself are data-dependent branches.
        Index emitted = 0;
        for (;;) {
            Index minC = kInvalidIndex;
            int hits = 0;
            for (size_t m = 0; m < k; ++m) {
                if (pos[m] < end[m]) {
                    // Head-coordinate load + compare, one per lane.
                    co_yield MicroOp::load(
                        addrOf(inputs[m].colIdxs().data(), pos[m]), 8);
                    co_yield MicroOp::iop();
                    const Index c = inputs[m]
                        .colIdxs()[static_cast<size_t>(pos[m])];
                    if (minC == kInvalidIndex || c < minC)
                        minC = c;
                }
            }
            // Min-selection tree: the last two levels resolve with
            // data-dependent picks (which side holds the minimum
            // varies per step); upper levels fold into vector ops.
            for (size_t lvl = 1; lvl < k && lvl <= 2; lvl <<= 1) {
                co_yield MicroOp::iop();
                co_yield MicroOp::branch(
                    kPcWhich,
                    ((minC >> lvl) & 1) != 0); // data-dependent pattern
            }
            co_yield MicroOp::branch(kPcKLoop, minC != kInvalidIndex);
            if (minC == kInvalidIndex)
                break;

            Value sum = 0.0;
            for (size_t m = 0; m < k; ++m) {
                const bool hit =
                    pos[m] < end[m] &&
                    inputs[m].colIdxs()[static_cast<size_t>(pos[m])] ==
                        minC;
                if (hit) {
                    co_yield MicroOp::load(
                        addrOf(inputs[m].vals().data(), pos[m]), 8);
                    sum += inputs[m].vals()[static_cast<size_t>(pos[m])];
                    ++pos[m];
                    ++hits;
                }
            }
            // Masked vector sum, then the cursor-advance loop: iterate
            // the set bits of the hit mask (count and pattern are
            // data-dependent, the source of this kernel's mispredicts).
            co_yield MicroOp::flop(static_cast<std::uint16_t>(hits));
            for (int h = 0; h < hits; ++h) {
                co_yield MicroOp::iop();
                co_yield MicroOp::branch(kPcKActive, h + 1 < hits);
            }
            outIdxs.push_back(minC);
            outVals.push_back(sum);
            ++emitted;
            co_yield MicroOp::store(
                addrOf(outVals.data(),
                       static_cast<Index>(outVals.size() - 1)), 8);
        }
        outRowNnz.push_back(emitted);
        co_yield MicroOp::branch(kPcKRow, r + 1 < rowEnd);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
