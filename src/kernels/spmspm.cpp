#include "spmspm.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::SimdConfig;
using sim::Trace;
using sim::addrOf;
using tensor::CsrMatrix;

tensor::CsrMatrix
spmspmRef(const CsrMatrix &a, const CsrMatrix &b)
{
    TMU_ASSERT(a.cols() == b.rows());
    std::vector<Index> ptrs{0};
    std::vector<Index> idxs;
    std::vector<Value> vals;

    // Novelty is tracked with an explicit bitmap, not acc[j] == 0.0:
    // partial sums that cancel exactly would otherwise re-insert j and
    // emit a duplicate column (tests/corpus/spmspm-cancellation.tns).
    std::vector<Value> acc(static_cast<size_t>(b.cols()), 0.0);
    std::vector<char> seen(static_cast<size_t>(b.cols()), 0);
    std::vector<Index> touched;
    for (Index i = 0; i < a.rows(); ++i) {
        touched.clear();
        for (Index p = a.rowBegin(i); p < a.rowEnd(i); ++p) {
            const Index k = a.idxs()[static_cast<size_t>(p)];
            const Value av = a.vals()[static_cast<size_t>(p)];
            for (Index q = b.rowBegin(k); q < b.rowEnd(k); ++q) {
                const auto j =
                    static_cast<size_t>(b.idxs()[static_cast<size_t>(q)]);
                if (!seen[j]) {
                    seen[j] = 1;
                    touched.push_back(static_cast<Index>(j));
                }
                acc[j] += av * b.vals()[static_cast<size_t>(q)];
            }
        }
        std::sort(touched.begin(), touched.end());
        for (Index j : touched) {
            idxs.push_back(j);
            vals.push_back(acc[static_cast<size_t>(j)]);
            acc[static_cast<size_t>(j)] = 0.0;
            seen[static_cast<size_t>(j)] = 0;
        }
        ptrs.push_back(static_cast<Index>(idxs.size()));
    }
    return CsrMatrix(a.rows(), b.cols(), std::move(ptrs), std::move(idxs),
                     std::move(vals));
}

std::vector<Index>
spmspmRowNnz(const CsrMatrix &a, const CsrMatrix &b)
{
    TMU_ASSERT(a.cols() == b.rows());
    std::vector<Index> rowNnz(static_cast<size_t>(a.rows()), 0);
    std::vector<bool> seen(static_cast<size_t>(b.cols()), false);
    std::vector<Index> touched;
    for (Index i = 0; i < a.rows(); ++i) {
        touched.clear();
        for (Index p = a.rowBegin(i); p < a.rowEnd(i); ++p) {
            const Index k = a.idxs()[static_cast<size_t>(p)];
            for (Index q = b.rowBegin(k); q < b.rowEnd(k); ++q) {
                const auto j =
                    static_cast<size_t>(b.idxs()[static_cast<size_t>(q)]);
                if (!seen[j]) {
                    seen[j] = true;
                    touched.push_back(static_cast<Index>(j));
                }
            }
        }
        rowNnz[static_cast<size_t>(i)] =
            static_cast<Index>(touched.size());
        for (Index j : touched)
            seen[static_cast<size_t>(j)] = false;
    }
    return rowNnz;
}

namespace {

enum SpmspmPc : std::uint16_t {
    kPcRowA = 10,
    kPcNnzA = 11,
    kPcRowB = 12,
    kPcFresh = 13,
    kPcSort = 14,
    kPcEmit = 15,
};

} // namespace

Trace
traceSpmspm(const CsrMatrix &a, const CsrMatrix &b,
            std::vector<Index> &outIdxs, std::vector<Value> &outVals,
            std::vector<Index> &outRowNnz, Index rowBegin, Index rowEnd,
            SimdConfig simd)
{
    TMU_ASSERT(a.cols() == b.rows());
    TMU_ASSERT(rowBegin >= 0 && rowEnd <= a.rows());
    const int vl = simd.lanes();

    std::vector<Value> acc(static_cast<size_t>(b.cols()), 0.0);
    std::vector<char> seen(static_cast<size_t>(b.cols()), 0);
    std::vector<Index> touched;

    for (Index i = rowBegin; i < rowEnd; ++i) {
        co_yield MicroOp::load(addrOf(a.ptrs().data(), i), 8);
        co_yield MicroOp::load(addrOf(a.ptrs().data(), i + 1), 8);
        touched.clear();

        for (Index p = a.rowBegin(i); p < a.rowEnd(i); ++p) {
            // Scalar load of (k, a_val).
            const Index k = a.idxs()[static_cast<size_t>(p)];
            const Value av = a.vals()[static_cast<size_t>(p)];
            co_yield MicroOp::load(addrOf(a.idxs().data(), p), 8);
            co_yield MicroOp::load(addrOf(a.vals().data(), p), 8);
            // Row lookup of B (scan-and-lookup with higher locality):
            // the ptr loads depend on the idx load above.
            co_yield MicroOp::load(addrOf(b.ptrs().data(), k), 8, 2,
                                   addrOf(a.idxs().data(), p));
            co_yield MicroOp::load(addrOf(b.ptrs().data(), k + 1), 8, 3,
                                   addrOf(a.idxs().data(), p));

            for (Index q = b.rowBegin(k); q < b.rowEnd(k); q += vl) {
                const int n =
                    static_cast<int>(std::min<Index>(vl, b.rowEnd(k) - q));
                co_yield MicroOp::load(addrOf(b.idxs().data(), q),
                                       static_cast<std::uint8_t>(n * 8));
                co_yield MicroOp::load(addrOf(b.vals().data(), q),
                                       static_cast<std::uint8_t>(n * 8));
                co_yield MicroOp::flop(static_cast<std::uint16_t>(n));

                // Scatter-accumulate into the dense workspace: vector
                // gather of acc[j], FMA, scatter back; the novelty
                // check is a branchless bitmap update (one extra op).
                for (int lane = 0; lane < n; ++lane) {
                    const auto j = static_cast<size_t>(
                        b.idxs()[static_cast<size_t>(q + lane)]);
                    // Producer is the b.idxs vector load, 2 ops per
                    // preceding lane plus the 3 chunk-header ops back.
                    co_yield MicroOp::load(
                        addrOf(acc.data(), static_cast<Index>(j)), 8,
                        static_cast<std::uint8_t>(2 * lane + 3));
                    co_yield MicroOp::store(
                        addrOf(acc.data(), static_cast<Index>(j)), 8);
                    if (!seen[j]) {
                        seen[j] = 1;
                        touched.push_back(static_cast<Index>(j));
                    }
                    acc[j] += av * b.vals()[static_cast<size_t>(q + lane)];
                }
                co_yield MicroOp::flop(static_cast<std::uint16_t>(2 * n));
                co_yield MicroOp::iop();
                co_yield MicroOp::branch(kPcRowB, q + vl < b.rowEnd(k));
            }
            co_yield MicroOp::branch(kPcNnzA, p + 1 < a.rowEnd(i));
        }

        // Sort touched columns (compaction/ordering cost of the
        // workspace approach): ~n log2 n compare/branch pairs.
        std::sort(touched.begin(), touched.end());
        const auto tn = static_cast<double>(touched.size());
        const auto cmps = static_cast<Index>(
            tn > 1.0 ? tn * std::log2(tn) : 0.0);
        for (Index c = 0; c < cmps; ++c) {
            co_yield MicroOp::iop();
            co_yield MicroOp::branch(kPcSort, (c & 1) != 0);
        }

        // Emit the output row: gather from acc, append to Z.
        for (size_t t = 0; t < touched.size(); ++t) {
            const auto j = static_cast<size_t>(touched[t]);
            co_yield MicroOp::load(
                addrOf(acc.data(), static_cast<Index>(j)), 8);
            outIdxs.push_back(static_cast<Index>(j));
            outVals.push_back(acc[j]);
            acc[j] = 0.0;
            seen[j] = 0;
            co_yield MicroOp::store(
                addrOf(outVals.data(),
                       static_cast<Index>(outVals.size() - 1)), 8);
            co_yield MicroOp::store(
                addrOf(acc.data(), static_cast<Index>(j)), 8);
            co_yield MicroOp::branch(kPcEmit, t + 1 < touched.size());
        }
        outRowNnz.push_back(static_cast<Index>(touched.size()));
        co_yield MicroOp::branch(kPcRowA, i + 1 < rowEnd);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
