#include "smallsolve.hpp"

#include <cmath>

#include "common/log.hpp"

namespace tmu::kernels {

using tensor::DenseMatrix;

DenseMatrix
gramMatrix(const DenseMatrix &a)
{
    const Index n = a.rows(), r = a.cols();
    DenseMatrix g(r, r, 0.0);
    for (Index i = 0; i < n; ++i) {
        const Value *row = a.row(i);
        for (Index p = 0; p < r; ++p) {
            for (Index q = 0; q < r; ++q)
                g(p, q) += row[p] * row[q];
        }
    }
    return g;
}

void
hadamardInPlace(DenseMatrix &a, const DenseMatrix &b)
{
    TMU_ASSERT(a.rows() == b.rows() && a.cols() == b.cols());
    for (Index i = 0; i < a.rows(); ++i) {
        for (Index j = 0; j < a.cols(); ++j)
            a(i, j) *= b(i, j);
    }
}

void
choleskySolveRows(const DenseMatrix &gram, DenseMatrix &rhsInOut)
{
    const Index r = gram.rows();
    TMU_ASSERT(gram.cols() == r && rhsInOut.cols() == r);

    // Regularized copy: G + eps*trace(G)/r * I.
    DenseMatrix l(r, r, 0.0);
    double trace = 0.0;
    for (Index i = 0; i < r; ++i)
        trace += gram(i, i);
    const double ridge = 1e-10 * (trace / static_cast<double>(r)) + 1e-12;

    // Cholesky factorization G = L L^T.
    for (Index i = 0; i < r; ++i) {
        for (Index j = 0; j <= i; ++j) {
            double s = gram(i, j) + (i == j ? ridge : 0.0);
            for (Index k = 0; k < j; ++k)
                s -= l(i, k) * l(j, k);
            if (i == j) {
                TMU_ASSERT(s > 0.0, "gram matrix not positive definite");
                l(i, i) = std::sqrt(s);
            } else {
                l(i, j) = s / l(j, j);
            }
        }
    }

    // Solve x L L^T = rhs row-wise: forward then backward substitution
    // on the transposed system.
    for (Index row = 0; row < rhsInOut.rows(); ++row) {
        Value *x = rhsInOut.row(row);
        // Solve y L^T = rhs  =>  L y^T = rhs^T (forward).
        for (Index i = 0; i < r; ++i) {
            double s = x[i];
            for (Index k = 0; k < i; ++k)
                s -= l(i, k) * x[k];
            x[i] = s / l(i, i);
        }
        // Solve x L = y (backward).
        for (Index i = r - 1; i >= 0; --i) {
            double s = x[i];
            for (Index k = i + 1; k < r; ++k)
                s -= l(k, i) * x[k];
            x[i] = s / l(i, i);
        }
    }
}

} // namespace tmu::kernels
