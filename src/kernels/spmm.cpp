#include "spmm.hpp"

#include "common/log.hpp"

namespace tmu::kernels {

tensor::DenseMatrix
spmmRef(const tensor::CsrMatrix &a, const tensor::DenseMatrix &b)
{
    TMU_ASSERT(a.cols() == b.rows());
    tensor::DenseMatrix z(a.rows(), b.cols(), 0.0);
    for (Index i = 0; i < a.rows(); ++i) {
        Value *zi = z.row(i);
        for (Index p = a.rowBegin(i); p < a.rowEnd(i); ++p) {
            const Index k = a.idxs()[static_cast<size_t>(p)];
            const Value av = a.vals()[static_cast<size_t>(p)];
            const Value *bk = b.row(k);
            for (Index j = 0; j < b.cols(); ++j)
                zi[j] += av * bk[j];
        }
    }
    return z;
}

} // namespace tmu::kernels
