/**
 * @file
 * Triangle counting via masked SpMSpM on the lower triangle
 * (GraphBLAS fused formulation, paper [11][38]): for every stored edge
 * (i, j) of L, count |L_i* intersect L_j*|. Merge-intensive real-world
 * application of the evaluation.
 */

#pragma once

#include <cstdint>

#include "sim/microop.hpp"
#include "tensor/csr.hpp"

namespace tmu::kernels {

/** Reference triangle count; @p l must be a strict lower triangle. */
std::uint64_t tricountRef(const tensor::CsrMatrix &l);

/**
 * Baseline triangle count over rows [rowBegin, rowEnd): per edge (i,j)
 * a two-pointer conjunctive merge of rows i and j with data-dependent
 * branches. Adds into @p count.
 */
sim::Trace traceTricount(const tensor::CsrMatrix &l, std::uint64_t &count,
                         Index rowBegin, Index rowEnd,
                         sim::SimdConfig simd);

} // namespace tmu::kernels
