/**
 * @file
 * Sparse Tensor Times Matrix: Z_ijl = A_ijk * B_kl, A in CSF
 * (Table 4 row SpTTM). Output is sparse in (i, j), dense in l.
 */

#pragma once

#include <vector>

#include "kernels/spttv.hpp"
#include "tensor/csf.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/** Semi-sparse SpTTM result: one dense row of length L per (i,j). */
struct SpttmResult
{
    std::vector<Coord2> coords;
    tensor::DenseMatrix rows; //!< rows.row(t) is the fiber of coords[t]
};

/** Reference SpTTM. */
SpttmResult spttmRef(const tensor::CsfTensor &a,
                     const tensor::DenseMatrix &b);

} // namespace tmu::kernels
