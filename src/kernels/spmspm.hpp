/**
 * @file
 * Gustavson sparse matrix - sparse matrix multiplication,
 * Z_ij = A_ik * B_kj with (ikj) schedule. The compute-stage proxy of
 * the evaluation (run as Z = A * A^T there).
 */

#pragma once

#include "sim/microop.hpp"
#include "tensor/csr.hpp"

namespace tmu::kernels {

/** Reference Gustavson SpMSpM: Z = A * B, all CSR. */
tensor::CsrMatrix spmspmRef(const tensor::CsrMatrix &a,
                            const tensor::CsrMatrix &b);

/**
 * Count the nnz of each output row of A * B (the symbolic phase used to
 * preallocate Z; paper Sec. 2.5).
 */
std::vector<Index> spmspmRowNnz(const tensor::CsrMatrix &a,
                                const tensor::CsrMatrix &b);

/**
 * Vectorized baseline Gustavson over output rows [rowBegin, rowEnd):
 * dense-accumulator workspace, per-row sort of touched columns, result
 * appended to the caller's output triplet arrays (ptrs entry per row).
 * Emits the corresponding micro-op stream.
 */
sim::Trace traceSpmspm(const tensor::CsrMatrix &a,
                       const tensor::CsrMatrix &b,
                       std::vector<Index> &outIdxs,
                       std::vector<Value> &outVals,
                       std::vector<Index> &outRowNnz, Index rowBegin,
                       Index rowEnd, sim::SimdConfig simd);

} // namespace tmu::kernels
