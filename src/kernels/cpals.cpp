#include "cpals.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/smallsolve.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::SimdConfig;
using sim::Trace;
using tensor::CooTensor;
using tensor::DenseMatrix;

CpFactors
cpalsInit(const CooTensor &a, const CpalsConfig &cfg)
{
    TMU_ASSERT(a.order() == 3 && cfg.rank > 0);
    Rng rng(cfg.seed);
    CpFactors f;
    for (int m = 0; m < 3; ++m) {
        f[static_cast<size_t>(m)] = DenseMatrix(a.dim(m), cfg.rank);
        auto &fm = f[static_cast<size_t>(m)];
        for (Index i = 0; i < fm.rows(); ++i) {
            for (Index j = 0; j < fm.cols(); ++j)
                fm(i, j) = rng.nextValue(0.1, 1.0);
        }
    }
    return f;
}

void
cpalsUpdateMode(const CooTensor &a, CpFactors &factors, int mode)
{
    const int m1 = mode == 0 ? 1 : 0;
    const int m2 = mode == 2 ? 1 : 2;
    DenseMatrix m = mttkrpRef(a, factors[static_cast<size_t>(m1)],
                              factors[static_cast<size_t>(m2)], mode);
    DenseMatrix g = gramMatrix(factors[static_cast<size_t>(m1)]);
    hadamardInPlace(g, gramMatrix(factors[static_cast<size_t>(m2)]));
    choleskySolveRows(g, m);
    factors[static_cast<size_t>(mode)] = std::move(m);
}

CpFactors
cpalsRef(const CooTensor &a, const CpalsConfig &cfg)
{
    CpFactors f = cpalsInit(a, cfg);
    for (int it = 0; it < cfg.iterations; ++it) {
        for (int m = 0; m < 3; ++m)
            cpalsUpdateMode(a, f, m);
    }
    return f;
}

double
cpalsFitAtNnz(const CooTensor &a, const CpFactors &f)
{
    const Index rank = f[0].cols();
    double err = 0.0;
    for (Index p = 0; p < a.nnz(); ++p) {
        const Value *r0 = f[0].row(a.idx(0, p));
        const Value *r1 = f[1].row(a.idx(1, p));
        const Value *r2 = f[2].row(a.idx(2, p));
        Value model = 0.0;
        for (Index j = 0; j < rank; ++j)
            model += r0[j] * r1[j] * r2[j];
        const Value d = a.val(p) - model;
        err += d * d;
    }
    return err;
}

namespace {

enum CpalsPc : std::uint16_t { kPcGram = 70, kPcSolve = 71 };

} // namespace

Trace
traceCpalsDense(Index rank, Index rowsOwned, SimdConfig simd)
{
    const int vl = simd.lanes();

    // Gram contribution of the owned rows: rowsOwned * R * R FMAs,
    // vectorized along one R dimension.
    for (Index i = 0; i < rowsOwned; ++i) {
        co_yield MicroOp::iop(); // factor row is cache-resident
        for (Index p = 0; p < rank; ++p) {
            for (Index q = 0; q < rank; q += vl) {
                const int n =
                    static_cast<int>(std::min<Index>(vl, rank - q));
                co_yield MicroOp::flop(
                    static_cast<std::uint16_t>(2 * n));
            }
            co_yield MicroOp::branch(kPcGram, p + 1 < rank);
        }
    }

    // Cholesky factorization (~R^3/3 flops, replicated per core) and
    // per-owned-row triangular solves (~2 R^2 flops each).
    const auto r = static_cast<double>(rank);
    const auto cholFlops = static_cast<Index>(r * r * r / 3.0);
    for (Index c = 0; c < cholFlops; c += 64)
        co_yield MicroOp::flop(static_cast<std::uint16_t>(
            std::min<Index>(64, cholFlops - c)));
    for (Index i = 0; i < rowsOwned; ++i) {
        const auto solveFlops = static_cast<Index>(2.0 * r * r);
        for (Index c = 0; c < solveFlops; c += 64)
            co_yield MicroOp::flop(static_cast<std::uint16_t>(
                std::min<Index>(64, solveFlops - c)));
        co_yield MicroOp::branch(kPcSolve, i + 1 < rowsOwned);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
