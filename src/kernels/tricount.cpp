#include "tricount.hpp"

#include "common/log.hpp"
#include "tensor/merge.hpp"

namespace tmu::kernels {

using sim::MicroOp;
using sim::Trace;
using sim::addrOf;
using tensor::CsrMatrix;

std::uint64_t
tricountRef(const CsrMatrix &l)
{
    std::uint64_t count = 0;
    for (Index i = 0; i < l.rows(); ++i) {
        for (Index p = l.rowBegin(i); p < l.rowEnd(i); ++p) {
            const Index j = l.idxs()[static_cast<size_t>(p)];
            tensor::conjunctiveMerge2(l.row(i), l.row(j),
                                      [&](Index, auto) { ++count; });
        }
    }
    return count;
}

namespace {

enum TcPc : std::uint16_t {
    kPcRow = 60,
    kPcEdge = 61,
    kPcCmp = 62,
    kPcLoop = 63,
};

} // namespace

Trace
traceTricount(const CsrMatrix &l, std::uint64_t &count, Index rowBegin,
              Index rowEnd, sim::SimdConfig /*simd*/)
{
    for (Index i = rowBegin; i < rowEnd; ++i) {
        co_yield MicroOp::load(addrOf(l.ptrs().data(), i), 8);
        co_yield MicroOp::load(addrOf(l.ptrs().data(), i + 1), 8);

        for (Index p = l.rowBegin(i); p < l.rowEnd(i); ++p) {
            co_yield MicroOp::load(addrOf(l.idxs().data(), p), 8);
            const Index j = l.idxs()[static_cast<size_t>(p)];
            // Row-j pointer loads depend on the edge load.
            co_yield MicroOp::load(addrOf(l.ptrs().data(), j), 8, 1);
            co_yield MicroOp::load(addrOf(l.ptrs().data(), j + 1), 8, 2);

            // Two-pointer intersection of rows i and j.
            Index pa = l.rowBegin(i), pb = l.rowBegin(j);
            const Index ea = l.rowEnd(i), eb = l.rowEnd(j);
            while (pa < ea && pb < eb) {
                co_yield MicroOp::load(addrOf(l.idxs().data(), pa), 8);
                co_yield MicroOp::load(addrOf(l.idxs().data(), pb), 8);
                const Index ca = l.idxs()[static_cast<size_t>(pa)];
                const Index cb = l.idxs()[static_cast<size_t>(pb)];
                co_yield MicroOp::iop();
                co_yield MicroOp::branch(kPcCmp, ca <= cb);
                if (ca == cb) {
                    ++count;
                    co_yield MicroOp::iop();
                    ++pa;
                    ++pb;
                } else if (ca < cb) {
                    ++pa;
                } else {
                    ++pb;
                }
                co_yield MicroOp::branch(kPcLoop, pa < ea && pb < eb);
            }
            co_yield MicroOp::branch(kPcEdge, p + 1 < l.rowEnd(i));
        }
        co_yield MicroOp::branch(kPcRow, i + 1 < rowEnd);
    }
    co_yield MicroOp::halt();
}

} // namespace tmu::kernels
