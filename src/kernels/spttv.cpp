#include "spttv.hpp"

#include "common/log.hpp"

namespace tmu::kernels {

SpttvResult
spttvRef(const tensor::CsfTensor &a, const tensor::DenseVector &b)
{
    TMU_ASSERT(a.order() == 3 && a.dim(2) == b.size());
    SpttvResult out;
    for (Index ni = 0; ni < a.numNodes(0); ++ni) {
        const Index i = a.nodeCoord(0, ni);
        for (Index nj = a.childBegin(0, ni); nj < a.childEnd(0, ni);
             ++nj) {
            const Index j = a.nodeCoord(1, nj);
            Value sum = 0.0;
            for (Index nk = a.childBegin(1, nj); nk < a.childEnd(1, nj);
                 ++nk) {
                sum += a.vals()[static_cast<size_t>(nk)] *
                       b[a.nodeCoord(2, nk)];
            }
            out.coords.push_back({i, j});
            out.vals.push_back(sum);
        }
    }
    return out;
}

} // namespace tmu::kernels
