/**
 * @file
 * Tiny dense linear algebra for CP-ALS: RxR symmetric positive
 * (semi)definite solves via Cholesky with diagonal regularization.
 */

#pragma once

#include <vector>

#include "common/types.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/**
 * Solve X * G = RHS for X, where G is RxR SPD (the ALS gram matrix) and
 * RHS/X are NxR row-major. G is regularized with a small diagonal ridge
 * so rank-deficient grams (common with synthetic data) stay solvable.
 */
void choleskySolveRows(const tensor::DenseMatrix &gram,
                       tensor::DenseMatrix &rhsInOut);

/** G = A^T * A for a row-major NxR matrix (the ALS gram). */
tensor::DenseMatrix gramMatrix(const tensor::DenseMatrix &a);

/** Hadamard (element-wise) product in place: a *= b. */
void hadamardInPlace(tensor::DenseMatrix &a, const tensor::DenseMatrix &b);

} // namespace tmu::kernels
