/**
 * @file
 * Matricized Tensor Times Khatri-Rao Product on a COO tensor:
 * Z_ij = A_ikl * B_kj * C_lj (order-3 MTTKRP over mode 0, Table 4 rows
 * MTTKRP P1/P2; the kernel of CP-ALS).
 */

#pragma once

#include "sim/microop.hpp"
#include "tensor/coo.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/**
 * Reference order-3 MTTKRP over @p mode: for each nonzero with
 * coordinates (c0,c1,c2), Z[c_mode] += val * B[c_m1] .* C[c_m2] where
 * m1/m2 are the other two modes in ascending order.
 */
tensor::DenseMatrix mttkrpRef(const tensor::CooTensor &a,
                              const tensor::DenseMatrix &b,
                              const tensor::DenseMatrix &c, int mode);

/**
 * Vectorized baseline MTTKRP (mode 0) over nonzeros [nnzBegin, nnzEnd):
 * per nonzero, load three coordinates + value, two dense factor rows,
 * FMA across the rank, accumulate into the output row (Phipps & Kolda
 * permutation layout: nonzeros sorted by mode 0 so output rows stay
 * resident). Adds into z, which the caller must zero-initialize.
 */
sim::Trace traceMttkrp(const tensor::CooTensor &a,
                       const tensor::DenseMatrix &b,
                       const tensor::DenseMatrix &c,
                       tensor::DenseMatrix &z, Index nnzBegin,
                       Index nnzEnd, sim::SimdConfig simd);

} // namespace tmu::kernels
