#include "spmspv.hpp"

#include "common/log.hpp"
#include "tensor/merge.hpp"

namespace tmu::kernels {

tensor::DenseVector
spmspvRef(const tensor::CsrMatrix &a, const tensor::SparseVector &b)
{
    TMU_ASSERT(a.cols() == b.size());
    tensor::DenseVector x(a.rows());
    for (Index r = 0; r < a.rows(); ++r) {
        Value sum = 0.0;
        tensor::conjunctiveMerge2(a.row(r), b.view(),
            [&](Index, auto getVal) { sum += getVal(0) * getVal(1); });
        x[r] = sum;
    }
    return x;
}

} // namespace tmu::kernels
