/**
 * @file
 * Sparse matrix-vector multiplication, Z_i = A_ij * B_j, A in CSR
 * (paper Fig. 4). The traversal-stage proxy of the evaluation.
 */

#pragma once

#include "sim/microop.hpp"
#include "tensor/csr.hpp"
#include "tensor/dense.hpp"

namespace tmu::kernels {

/** Reference SpMV: x = A * b. */
tensor::DenseVector spmvRef(const tensor::CsrMatrix &a,
                            const tensor::DenseVector &b);

/**
 * SVE-style vectorized baseline SpMV over the row range [rowBegin,
 * rowEnd): computes x and yields the micro-op stream of the TACO/SVE
 * implementation (vector loads of idxs/vals, gather of b, FMA, reduce,
 * data-dependent loop branches). Operands must outlive the trace.
 */
sim::Trace traceSpmv(const tensor::CsrMatrix &a,
                     const tensor::DenseVector &b, tensor::DenseVector &x,
                     Index rowBegin, Index rowEnd, sim::SimdConfig simd);

} // namespace tmu::kernels
