/**
 * @file
 * Sparse tensor contraction of two CSF tensors:
 * Z_ij = A_ikl * B_lkj, contracting modes (k, l) of A against (l, k) of
 * B (the Sparta expression, paper [35]). The evaluation runs the
 * *symbolic* phase, which computes the output structure size.
 */

#pragma once

#include <vector>

#include "sim/microop.hpp"
#include "tensor/csf.hpp"

namespace tmu::kernels {

/**
 * Reference symbolic SpTC: the number of structurally non-zero output
 * entries (i, j) of Z_ij = A_ikl * B_lkj.
 */
Index sptcSymbolicRef(const tensor::CsfTensor &a,
                      const tensor::CsfTensor &b);

/** Per-root-i output nnz (for partitioned checking and the TMU path). */
std::vector<Index> sptcSymbolicRowsRef(const tensor::CsfTensor &a,
                                       const tensor::CsfTensor &b);

/**
 * Baseline symbolic SpTC over A root nodes [rootBegin, rootEnd): per
 * (i,k,l) leaf of A, look up B subtree (l,k,*) by binary search over
 * the compressed levels (dependent loads + data-dependent branches),
 * then union the j fibers into a bitmap workspace. Accumulates output
 * counts into @p rowNnz (caller-zeroed, indexed by root position).
 */
sim::Trace traceSptcSymbolic(const tensor::CsfTensor &a,
                             const tensor::CsfTensor &b,
                             std::vector<Index> &rowNnz, Index rootBegin,
                             Index rootEnd, sim::SimdConfig simd);

} // namespace tmu::kernels
