#include "functional.hpp"

#include <cstring>
#include <memory>

#include "common/log.hpp"
#include "sim/addrspace.hpp"

namespace tmu::engine {

double
OutqRecord::f64(int o, int i) const
{
    double v;
    std::memcpy(&v,
                &operands[static_cast<size_t>(o)][static_cast<size_t>(i)],
                sizeof(v));
    return v;
}

Index
OutqRecord::i64(int o, int i) const
{
    Index v;
    std::memcpy(&v,
                &operands[static_cast<size_t>(o)][static_cast<size_t>(i)],
                sizeof(v));
    return v;
}

std::size_t
OutqRecord::bytes() const
{
    std::size_t n = 8; // callback id + mask header
    for (const auto &op : operands)
        n += op.size() * 8;
    return n;
}

namespace {

/** Raw 8-byte element values of one lane's current step: per slot. */
using LaneValues = std::vector<std::uint64_t>;

/** Values of all lanes of one layer at the current step. */
struct StepView
{
    int layer = -1;
    LaneMask mask;                     //!< lanes with valid values
    std::vector<LaneValues> perLane;   //!< indexed by lane

    std::uint64_t
    value(const StreamRef &ref) const
    {
        TMU_ASSERT(ref.tu.layer == layer,
                   "stream reference crosses more than one layer");
        TMU_ASSERT(mask.test(static_cast<unsigned>(ref.tu.lane)),
                   "reading a stream of an inactive lane (%d,%d)",
                   ref.tu.layer, ref.tu.lane);
        return perLane[static_cast<size_t>(ref.tu.lane)]
                      [static_cast<size_t>(ref.slot)];
    }
};

std::uint64_t
loadElem(Addr addr)
{
    std::uint64_t v;
    std::memcpy(&v, sim::hostPtr(addr), sizeof(v));
    return v;
}

/** A lane's fiber instance: evaluates stream values per iteration. */
class FiberIter
{
  public:
    FiberIter(const TmuProgram &prog, TuRef ref, const StepView *parent)
        : prog_(prog), tu_(prog.tu(ref)), parent_(parent)
    {
        switch (tu_.kind) {
          case TraversalKind::Dense:
            cur_ = tu_.beg;
            end_ = tu_.end;
            break;
          case TraversalKind::Range: {
            TMU_ASSERT(parent_ != nullptr);
            const auto beg = static_cast<Index>(
                parent_->value(tu_.begStream));
            const auto end = static_cast<Index>(
                parent_->value(tu_.endStream));
            cur_ = beg + tu_.offset;
            end_ = end;
            break;
          }
          case TraversalKind::Index: {
            TMU_ASSERT(parent_ != nullptr);
            const auto beg = static_cast<Index>(
                parent_->value(tu_.begStream));
            cur_ = beg + tu_.offset;
            end_ = beg + tu_.size;
            break;
          }
        }
    }

    bool done() const { return cur_ >= end_; }

    /** Evaluate all stream slots at the current index, then advance. */
    LaneValues
    next()
    {
        TMU_ASSERT(!done());
        LaneValues vals(tu_.streams.size(), 0);
        for (size_t s = 0; s < tu_.streams.size(); ++s) {
            const StreamDesc &sd = tu_.streams[s];
            switch (sd.kind) {
              case StreamKind::Ite:
                vals[s] = static_cast<std::uint64_t>(cur_);
                break;
              case StreamKind::Mem: {
                Index x = parentValue(sd.parent, vals);
                if (sd.parent2.valid())
                    x += parentValue(sd.parent2, vals);
                vals[s] = loadElem(sd.base +
                                   static_cast<Addr>(x) * 8);
                break;
              }
              case StreamKind::Lin: {
                const Index x = parentValue(sd.parent, vals);
                auto v = static_cast<Index>(
                    sd.linA * static_cast<double>(x) + sd.linB);
                if (sd.parent2.valid())
                    v += parentValue(sd.parent2, vals);
                vals[s] = static_cast<std::uint64_t>(v);
                break;
              }
              case StreamKind::Map: {
                const Index x = parentValue(sd.parent, vals);
                TMU_ASSERT(x >= 0 && static_cast<size_t>(x) <
                                         sd.map.size(),
                           "map index %lld out of range",
                           static_cast<long long>(x));
                vals[s] = static_cast<std::uint64_t>(
                    sd.map[static_cast<size_t>(x)]);
                break;
              }
              case StreamKind::Ldr: {
                Index x = parentValue(sd.parent, vals);
                if (sd.parent2.valid())
                    x += parentValue(sd.parent2, vals);
                vals[s] = sd.base + static_cast<Addr>(x) * 8;
                break;
              }
              case StreamKind::Fwd:
                TMU_ASSERT(parent_ != nullptr);
                vals[s] = parent_->value(sd.fwdSource);
                break;
            }
        }
        cur_ += tu_.stride;
        return vals;
    }

  private:
    /** Resolve an index parent: same-TU earlier slot or leftward. */
    Index
    parentValue(const StreamRef &ref, const LaneValues &vals) const
    {
        if (parent_ != nullptr && ref.tu.layer == parent_->layer)
            return static_cast<Index>(parent_->value(ref));
        // Same-TU parent: must be an earlier slot (config order).
        return static_cast<Index>(vals[static_cast<size_t>(ref.slot)]);
    }

    const TmuProgram &prog_;
    const TuDesc &tu_;
    const StepView *parent_;
    Index cur_ = 0;
    Index end_ = 0;
};

/** The recursive interpreter. */
class Interp
{
  public:
    Interp(const TmuProgram &prog, const RecordSink &sink)
        : prog_(prog), sink_(sink)
    {}

    void
    run()
    {
        runLayer(0, LaneMask::firstN(
                        static_cast<unsigned>(prog_.layer(0).lanes())),
                 nullptr);
    }

  private:
    /** Fire all callbacks registered for (layer, event). */
    void
    fire(int layer, CallbackEvent event, LaneMask mask,
         const StepView *step)
    {
        for (const CallbackDesc &cb :
             prog_.layer(layer).callbacks) {
            if (cb.event != event)
                continue;
            OutqRecord rec;
            rec.layer = layer;
            rec.event = event;
            rec.callbackId = cb.callbackId;
            rec.mask = mask;
            for (int o : cb.operands) {
                std::vector<std::uint64_t> vals;
                if (o == kMskOperand) {
                    vals.push_back(mask.bits());
                } else if (step != nullptr) {
                    const GroupStreamDesc &gs =
                        prog_.layer(layer)
                            .groupStreams[static_cast<size_t>(o)];
                    for (unsigned r = 0; r < gs.perLane.size(); ++r) {
                        if (mask.test(r))
                            vals.push_back(step->value(gs.perLane[r]));
                    }
                }
                rec.operands.push_back(std::move(vals));
            }
            sink_(rec);
        }
    }

    /** Lanes of layer l+1 activated by a step of layer l. */
    LaneMask
    nextMask(int layer, LaneMask predicate) const
    {
        if (layer + 1 >= prog_.numLayers())
            return LaneMask();
        const GroupMode mode = prog_.layer(layer).mode;
        const int nextLanes = prog_.layer(layer + 1).lanes();
        switch (mode) {
          case GroupMode::BCast:
            return LaneMask::firstN(static_cast<unsigned>(nextLanes));
          case GroupMode::Single:
          case GroupMode::Keep: {
            LaneMask m;
            m.set(0);
            return m;
          }
          case GroupMode::LockStep:
          case GroupMode::DisjMrg:
          case GroupMode::ConjMrg:
            return predicate &
                   LaneMask::firstN(static_cast<unsigned>(nextLanes));
        }
        return LaneMask();
    }

    void
    step(int layer, LaneMask predicate, const StepView &view)
    {
        fire(layer, CallbackEvent::GroupIte, predicate, &view);
        if (layer + 1 < prog_.numLayers()) {
            const LaneMask down = nextMask(layer, predicate);
            if (!down.empty())
                runLayer(layer + 1, down, &view);
        }
    }

    void
    runLayer(int layer, LaneMask active, const StepView *parent)
    {
        const LayerDesc &desc = prog_.layer(layer);
        const GroupMode mode = desc.mode;

        // Restrict to lanes that actually have TUs.
        active = active &
                 LaneMask::firstN(static_cast<unsigned>(desc.lanes()));

        fire(layer, CallbackEvent::GroupBegin, active, nullptr);

        StepView view;
        view.layer = layer;
        view.perLane.resize(static_cast<size_t>(desc.lanes()));

        if (mode == GroupMode::Single || mode == GroupMode::BCast ||
            mode == GroupMode::Keep) {
            const int lane = mode == GroupMode::Keep ? desc.keepLane : 0;
            if (active.test(static_cast<unsigned>(lane))) {
                FiberIter it(prog_, TuRef{layer, lane}, parent);
                while (!it.done()) {
                    view.perLane[static_cast<size_t>(lane)] = it.next();
                    LaneMask p;
                    p.set(static_cast<unsigned>(lane));
                    view.mask = p;
                    step(layer, p, view);
                }
            }
        } else {
            // Parallel lanes: instantiate an iterator per active lane.
            std::vector<std::unique_ptr<FiberIter>> iters(
                static_cast<size_t>(desc.lanes()));
            std::vector<bool> hasValue(static_cast<size_t>(desc.lanes()),
                                       false);
            for (int r = 0; r < desc.lanes(); ++r) {
                if (active.test(static_cast<unsigned>(r))) {
                    iters[static_cast<size_t>(r)] =
                        std::make_unique<FiberIter>(
                            prog_, TuRef{layer, r}, parent);
                }
            }

            auto advance = [&](int r) {
                view.perLane[static_cast<size_t>(r)] =
                    iters[static_cast<size_t>(r)]->next();
                hasValue[static_cast<size_t>(r)] = true;
            };
            // Prime the heads.
            for (int r = 0; r < desc.lanes(); ++r) {
                if (iters[static_cast<size_t>(r)] &&
                    !iters[static_cast<size_t>(r)]->done()) {
                    advance(r);
                }
            }

            auto keyOf = [&](int r) {
                const TuDesc &t = prog_.tu(TuRef{layer, r});
                const int slot = t.mergeKey.valid() ? t.mergeKey.slot : 0;
                return static_cast<Index>(
                    view.perLane[static_cast<size_t>(r)]
                                [static_cast<size_t>(slot)]);
            };

            for (;;) {
                // Lanes holding a current (unconsumed) element.
                LaneMask have;
                for (int r = 0; r < desc.lanes(); ++r) {
                    if (hasValue[static_cast<size_t>(r)])
                        have.set(static_cast<unsigned>(r));
                }
                if (have.empty())
                    break;

                LaneMask predicate;
                if (mode == GroupMode::LockStep) {
                    predicate = have;
                } else {
                    // Merge modes: lanes at the minimum key.
                    Index minKey = 0;
                    bool first = true;
                    for (int r = 0; r < desc.lanes(); ++r) {
                        if (!have.test(static_cast<unsigned>(r)))
                            continue;
                        const Index k = keyOf(r);
                        if (first || k < minKey) {
                            minKey = k;
                            first = false;
                        }
                    }
                    for (int r = 0; r < desc.lanes(); ++r) {
                        if (have.test(static_cast<unsigned>(r)) &&
                            keyOf(r) == minKey)
                            predicate.set(static_cast<unsigned>(r));
                    }
                }

                view.mask = predicate;
                const bool emit =
                    mode != GroupMode::ConjMrg || predicate == active;
                if (emit)
                    step(layer, predicate, view);

                // Consume the stepped lanes and refill their heads.
                for (int r = 0; r < desc.lanes(); ++r) {
                    if (!predicate.test(static_cast<unsigned>(r)))
                        continue;
                    hasValue[static_cast<size_t>(r)] = false;
                    if (!iters[static_cast<size_t>(r)]->done())
                        advance(r);
                }

                // Conjunctive merging ends when any active lane runs dry.
                if (mode == GroupMode::ConjMrg) {
                    bool anyDry = false;
                    for (int r = 0; r < desc.lanes(); ++r) {
                        if (active.test(static_cast<unsigned>(r)) &&
                            !hasValue[static_cast<size_t>(r)])
                            anyDry = true;
                    }
                    if (anyDry)
                        break;
                }
            }
        }

        fire(layer, CallbackEvent::GroupEnd, active, nullptr);
    }

    const TmuProgram &prog_;
    const RecordSink &sink_;
};

} // namespace

void
interpret(const TmuProgram &program, const RecordSink &sink)
{
    program.validate(program.maxLanes());
    Interp interp(program, sink);
    interp.run();
}

std::vector<OutqRecord>
interpretToVector(const TmuProgram &program)
{
    std::vector<OutqRecord> out;
    interpret(program, [&](const OutqRecord &r) { out.push_back(r); });
    return out;
}

} // namespace tmu::engine
