/**
 * @file
 * Cycle-level TMU engine (paper Sec. 5).
 *
 * Models, per cycle:
 *  - TU FSMs (fbeg/fite/fend) pushing elements into bounded stream
 *    queues carved from the per-lane storage (Secs. 5.1, 5.5);
 *  - the hierarchical memory arbiter issuing cacheline requests to the
 *    LLC — leftmost layer first, round-robin across a layer's TUs,
 *    config-order across a TU's streams, in-order within a queue,
 *    bounded outstanding requests (Secs. 5.4, 5.6);
 *  - TG FSMs (gbeg/gite/gend) merging/co-iterating lanes and producing
 *    predicates (Sec. 5.2);
 *  - the serialized outQ writer with double-buffered chunks installed
 *    into the host core's L2 (Secs. 5.3, 5.6).
 *
 * The engine computes real values; its record stream is verified
 * against the functional interpreter in tests.
 */

#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/circular_queue.hpp"
#include "common/statreg.hpp"
#include "common/stats.hpp"
#include "common/tracewriter.hpp"
#include "sim/memsys.hpp"
#include "sim/system.hpp"
#include "tmu/functional.hpp"
#include "tmu/program.hpp"
#include "tmu/sizing.hpp"

namespace tmu::engine {

/** Engine configuration (paper Table 5 TMU row). */
struct EngineConfig
{
    int lanes = 8;
    std::size_t perLaneBytes = 2048;
    int maxOutstanding = 128;
    int issuePerCycle = 2;          //!< memory requests per cycle
    std::size_t chunkBytes = 1024;  //!< outQ chunk size
    int recordsPerCycle = 2;        //!< serializer bandwidth
    std::size_t stepQueueDepth = 16;
    std::size_t eventQueueDepth = 32;
    /**
     * Conjunctive-merge skip rate: mismatching (non-emitting) merge
     * steps retired per cycle. Intersections fast-forward through
     * disjoint key ranges with a comparator tree over the queue heads;
     * 1 = strictly one gite per cycle.
     */
    int conjSkipPerCycle = 4;
};

/** Engine-side counters. */
struct EngineStats
{
    std::uint64_t requestsIssued = 0;
    std::uint64_t coalescedLoads = 0;
    std::uint64_t elementsPushed = 0;
    std::uint64_t recordsEmitted = 0;
    std::uint64_t chunksSealed = 0;
    std::uint64_t outqBytes = 0;
    Cycle busyCycles = 0;
    double rwRatioSum = 0.0; //!< per-chunk read/write time ratios
    std::uint64_t rwChunks = 0;

    /**
     * Engine cycle attribution: every busy cycle is charged to exactly
     * one bucket (attrSum() == busyCycles, checked per run). A cycle
     * that advanced any FSM/queue/serializer state is fill / traverse /
     * drain by marshaling phase; a cycle that changed nothing stalled
     * either on outstanding memory (memsys-stall) or on the consumer
     * freeing an outQ chunk (backpressure).
     */
    Cycle fillCycles = 0;        //!< progress while filling a chunk
    Cycle traverseCycles = 0;    //!< progress, no chunk being filled
    Cycle drainCycles = 0;       //!< progress after serializer finish
    Cycle memsysStallCycles = 0; //!< no progress, requests in flight
    Cycle backpressureCycles = 0; //!< no progress, waiting on consumer

    /** Sum of the attribution buckets; must equal busyCycles. */
    Cycle
    attrSum() const
    {
        return fillCycles + traverseCycles + drainCycles +
               memsysStallCycles + backpressureCycles;
    }

    double
    readToWriteRatio() const
    {
        return rwChunks ? rwRatioSum / static_cast<double>(rwChunks)
                        : 0.0;
    }
};

/**
 * Minimal architectural context saved on a context switch
 * (paper Sec. 5.6): the engine quiesces at an outer-element boundary;
 * the saved iteration head lets the OS rebuild and resume the program.
 */
struct TmuContext
{
    Index outerResumeBeg = 0;
};

/**
 * One per-core TMU engine. Ticks as a System device; the host core
 * consumes its records through OutqSource.
 */
class TmuEngine : public sim::Tickable
{
  public:
    TmuEngine(int coreId, const EngineConfig &cfg,
              sim::MemorySystem &mem, const TmuProgram &program);

    bool tick(Cycle now) override;

    /**
     * Sleep-until hint (sim/sched.hpp). The engine sleeps only when a
     * tick provably changed nothing (no FSM advanced, no request
     * issued or attempted, nothing serialized) and no sealed chunk
     * exists (the consumer could otherwise mutate outQ occupancy any
     * cycle): then the next possible change is the earliest in-flight
     * memory completion, or a port wake. Slept cycles' busy/occupancy/
     * round-robin bookkeeping is back-filled on the next tick.
     */
    Cycle wakeHint(Cycle now) const override;

    /** Registers the self-wake port (fired on outQ chunk free). */
    void bindScheduler(sim::Scheduler &sched, int handle) override;

    /** Bind the host core's consumer-wake port (fired on seal/finish). */
    void
    setConsumerWake(sim::Scheduler &sched, int handle)
    {
        consumerWake_.bind(sched, handle);
    }

    /**
     * Earliest cycle a popRecord poll could succeed *or have a side
     * effect* (fault-RNG draws, verify clocks): the gate a starved
     * consumer may sleep until. kWakeNever = no sealed chunk — the
     * next record can only appear via a seal, which fires the
     * consumer-wake port.
     */
    Cycle recordAvailableAt(Cycle now) const;

    /** True when traversal, merging and marshaling all completed. */
    bool producerDone() const;

    /**
     * Pop the next record if available (its chunk sealed by @p now).
     * @param outqAddr out: host address of the record payload inside
     *        the outQ buffer (for the core's operand loads).
     */
    bool popRecord(Cycle now, OutqRecord &rec, Addr &outqAddr);

    /** True when every produced record has been consumed. */
    bool allConsumed() const;

    /** Ask the engine to stop at the next outer-element boundary. */
    void requestQuiesce();

    /** After requestQuiesce(): drained and ready to save? */
    bool quiesced() const;

    /** Save the minimal context (valid once quiesced). */
    TmuContext saveContext() const;

    /**
     * Rebuild a program to resume from a saved context: the layer-0
     * dense traversal restarts at the saved iteration head.
     */
    static TmuProgram rebaseProgram(TmuProgram program,
                                    const TmuContext &ctx);

    const EngineStats &stats() const { return stats_; }
    const QueuePlan &queuePlan() const { return plan_; }
    int coreId() const { return coreId_; }

    /**
     * Attach a timeline tracer (not owned; nullptr detaches). The
     * engine reports a fill/traverse/drain phase track on thread
     * 100+coreId, chunk fill/drain spans on thread 200+coreId, and an
     * outQ-occupancy counter track (sampled every 32 cycles).
     */
    void setTracer(stats::TraceWriter *tracer, int pid);

    /**
     * Register the engine counters under @p prefix (e.g. "tmu0.").
     * @p extended adds the occupancy histogram and chunk accounting.
     */
    void registerStats(stats::StatRegistry &reg,
                       const std::string &prefix, bool extended) const;

    /** outQ resident-bytes histogram, sampled every 32 busy cycles. */
    const Histogram &outqOccupancy() const { return occupancyHist_; }

    /** Live outQ resident bytes (telemetry counter sampling). */
    std::size_t outqOccupancyBytes() const { return occupancyBytes_; }

    /** One-line-per-unit dump of FSM/queue state (deadlock triage). */
    std::string debugState() const override;

    /**
     * Monotonic useful-work counter for the forward-progress watchdog:
     * moves whenever the engine traverses, marshals, seals or drains —
     * so long fill phases with no core commits do not trip it.
     */
    std::uint64_t
    progressCount() const override
    {
        return stats_.elementsPushed + stats_.requestsIssued +
               stats_.recordsEmitted + stats_.chunksSealed +
               stats_.rwChunks;
    }

    /**
     * Attach a fault injector (borrowed; nullptr detaches). Sites:
     * delayed fills (fill-delay), consumer backpressure (outq-stall),
     * and payload corruption (outq-corrupt) — the latter must be
     * caught by the per-chunk checksum, which restores the payload at
     * a modeled retransmit penalty, keeping results correct.
     */
    void setFaultInjector(sim::FaultInjector *faults)
    {
        faults_ = faults;
    }

  private:
    /** Readiness/request state of one mem-slot of one element. */
    struct MemSlotState
    {
        bool requested = false;
        Cycle ready = 0;
    };

    /** One element pushed into a TU's (jointly-controlled) streams. */
    struct TimedElem
    {
        std::vector<std::uint64_t> vals; //!< per stream slot
        std::vector<MemSlotState> mem;   //!< per mem-slot ordinal
        bool end = false;                //!< fiber-end control token
        Cycle pushed = 0;
    };

    /** One inter-layer step published by a TG. */
    struct StepRecord
    {
        LaneMask mask;
        std::vector<std::vector<std::uint64_t>> vals; //!< per lane
    };

    /** Serializer token: the structural event stream of one TG. */
    struct EventToken
    {
        CallbackEvent kind = CallbackEvent::GroupIte;
        bool descend = false;
        std::vector<OutqRecord> records; //!< registered callbacks only
    };

    /** Per-TU dynamic state. */
    struct TuState
    {
        TuRef ref;
        enum class Phase { WaitStep, Iter, PushEnd, Done } phase =
            Phase::WaitStep;
        Index cur = 0;
        Index end = 0;
        std::uint64_t stepCursor = 0; //!< parent steps examined
        StepRecord view;              //!< current instance's parent step
        bool hasView = false;
        CircularQueue<TimedElem> q;
        /** Arbiter issue pointer per mem-slot ordinal. */
        struct SlotPtr
        {
            std::size_t elem = 0;
            Addr lastLine = ~Addr{0};
            Cycle lastReady = 0;
        };
        std::vector<SlotPtr> slotPtr;
        std::vector<int> memOrdinalOfSlot; //!< stream slot -> ordinal|-1
        std::vector<int> slotOfMemOrdinal;
    };

    /** Per-layer (TG) dynamic state. */
    struct TgState
    {
        int layer = 0;
        enum class Phase { WaitParent, Begin, Iterate, Flush, Finish,
                           Done } phase = Phase::WaitParent;
        std::uint64_t parentCursor = 0;
        LaneMask active;
        LaneMask flushRemaining; //!< Flush: lanes whose END is pending
        std::deque<StepRecord> steps; //!< published for layer+1
        std::uint64_t stepsBase = 0;  //!< seq of steps.front()
        std::uint64_t stepsProduced = 0;
        CircularQueue<EventToken> events;
        std::uint64_t eventsProduced = 0;
        bool doneFlag = false;
    };

    /** Location + original value of an injected payload corruption. */
    struct CorruptedWord
    {
        std::size_t record = 0;
        std::size_t operand = 0;
        std::size_t word = 0;
        std::uint64_t original = 0;
    };

    /** One outQ chunk. */
    struct Chunk
    {
        enum class State { Free, Filling, Sealed } state = State::Free;
        std::deque<std::pair<OutqRecord, Addr>> records;
        std::size_t usedBytes = 0;
        Cycle fillStart = 0;
        Cycle sealAt = 0;
        Cycle readyAt = 0; //!< sealAt, pushed out by fault recovery
        Cycle consumeStart = 0;
        bool consuming = false;
        std::uint64_t checksum = 0; //!< FNV-1a over payloads at write
        bool verified = false;      //!< checksum checked on first pop
        std::vector<CorruptedWord> corrupted; //!< pending injections
    };

    void tickTus(Cycle now);
    void tickArbiter(Cycle now);
    void tickTgs(Cycle now);
    void tickSerializer(Cycle now);
    void popConsumedSteps(int layer);

    /** Outcome of one TG co-iteration attempt. */
    enum class IterOutcome { Blocked, Skipped, Emitted, Transitioned };
    IterOutcome tgIterateOnce(TgState &tg, Cycle now);
    void popTuHead(int layer, int lane);
    std::vector<OutqRecord> makeRecords(int layer, CallbackEvent ev,
                                        LaneMask mask,
                                        bool withOperands);

    LaneMask activeForStep(int layer, LaneMask parentMask) const;
    std::uint64_t resolveValue(const TuState &tu, const StreamRef &ref,
                               const std::vector<std::uint64_t> &vals)
        const;
    Cycle parentReady(const TuState &tu, const TimedElem &e,
                      const StreamRef &parent) const;
    Cycle slotDepReady(const TuState &tu, const TimedElem &e,
                       int slot) const;
    bool elemReady(const TuState &tu, const TimedElem &e,
                   Cycle now) const;
    Index mergeKeyOf(const TuState &tu, const TimedElem &e) const;
    void pushElement(TuState &tu, Cycle now);
    bool tuDone(const TuState &tu) const;
    void sealChunk(int c, Cycle now);
    int fillingChunk(Cycle now);
    /** Append @p rec to chunk @p c: checksum + optional corruption. */
    void writeRecord(Chunk &ch, OutqRecord rec, Addr addr);
    /** First-pop integrity check; true once the chunk is consumable. */
    bool verifyChunk(Chunk &ch, Cycle now);

    int coreId_;
    EngineConfig cfg_;
    sim::MemorySystem &mem_;
    TmuProgram prog_;
    QueuePlan plan_;
    EngineStats stats_;

    std::vector<std::vector<TuState>> tus_; //!< [layer][lane]
    std::vector<TgState> tgs_;
    std::vector<int> laneRr_; //!< arbiter round-robin start per layer

    std::vector<Cycle> outstanding_; //!< in-flight request completions
    /**
     * In-flight cacheline requests engine-wide: the arbiter works at
     * cacheline granularity (Sec. 5.4), so lanes traversing interleaved
     * slices of one fiber share a single request per line.
     */
    std::unordered_map<Addr, Cycle> inflightLines_;

    // Serializer state.
    std::vector<int> stack_;
    bool serializerDone_ = false;

    // outQ double buffer (real host memory for the cache model).
    std::vector<std::uint8_t> outqBuf_;
    Chunk chunks_[2];
    int curChunk_ = -1;     //!< chunk being filled, -1 none
    int nextFill_ = 0;      //!< chunk index that fills next
    int consumeChunk_ = 0;  //!< chunk index next consumed

    bool quiesceRequested_ = false;
    Index resumeCur_ = 0;

    sim::FaultInjector *faults_ = nullptr; //!< borrowed, may be null
    Cycle consumeStallUntil_ = 0; //!< outq-stall injection deadline

    // Sleep/wake bookkeeping (event-driven scheduler).
    bool changed_ = false;      //!< any state mutation this tick
    /** Layers whose round-robin pointer advanced this tick (layers
     *  past an outstanding-full arbiter stop stay frozen). */
    int arbLayersAdvanced_ = 0;
    Cycle lastTicked_ = 0;
    /** Attribution bucket each slept cycle charges to: the no-change
     *  classification of the frozen state (engine sleeps only when a
     *  tick changed nothing). */
    Cycle EngineStats::*sleepAttr_ = &EngineStats::memsysStallCycles;
    sim::WakePort consumerWake_; //!< host core (seal / producer done)
    sim::WakePort selfWake_;     //!< this engine (outQ chunk freed)

    stats::TraceWriter *tracer_ = nullptr; //!< borrowed, may be null
    int tracePid_ = 0;
    std::size_t occupancyBytes_ = 0; //!< record bytes resident in outQ
    Histogram occupancyHist_;
};

} // namespace tmu::engine
