#include "sizing.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace tmu::engine {

QueuePlan
planQueues(const TmuProgram &program, std::size_t perLaneBytes,
           int minDepth)
{
    TMU_ASSERT(perLaneBytes >= 64);
    const int layers = program.numLayers();

    // Volume weight of each layer: cumulative expected elements.
    std::vector<double> weight(static_cast<size_t>(layers), 1.0);
    double cumulative = 1.0;
    for (int l = 0; l < layers; ++l) {
        const TuDesc &tu = program.layer(l).tus.front();
        // Outer layers iterate long fibers too, but only their *queue
        // pressure* matters: inner layers re-load per outer element.
        cumulative *= std::max<double>(
            1.0, std::sqrt(static_cast<double>(tu.expectedFiberLen)));
        weight[static_cast<size_t>(l)] = cumulative;
    }
    double total = 0.0;
    for (int l = 0; l < layers; ++l) {
        // Each element occupies 8 bytes in every stream of the TU.
        const auto streams = static_cast<double>(
            program.layer(l).tus.front().streams.size());
        weight[static_cast<size_t>(l)] *= streams;
        total += weight[static_cast<size_t>(l)];
    }

    QueuePlan plan;
    for (int l = 0; l < layers; ++l) {
        const auto streams = static_cast<double>(
            program.layer(l).tus.front().streams.size());
        const double bytes = static_cast<double>(perLaneBytes) *
                             weight[static_cast<size_t>(l)] / total;
        const int depth = static_cast<int>(bytes / (8.0 * streams));
        plan.depthPerLayer.push_back(std::max(minDepth, depth));
    }
    return plan;
}

} // namespace tmu::engine
