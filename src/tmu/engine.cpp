#include "engine.hpp"

#include <algorithm>
#include <cstring>

#include "common/log.hpp"
#include "sim/fault.hpp"
#include "sim/addrspace.hpp"

namespace tmu::engine {

namespace {

constexpr Cycle kNever = ~Cycle{0};

/** Retransmit penalty when a corrupted chunk must be re-fetched and
 *  the injection site did not specify one. */
constexpr Cycle kDefaultRecoveryCycles = 256;

/** FNV-1a fold of one outQ record's payload words into @p h. */
std::uint64_t
foldRecord(std::uint64_t h, const OutqRecord &rec)
{
    constexpr std::uint64_t kPrime = 0x100000001b3ULL;
    h = (h ^ static_cast<std::uint64_t>(rec.callbackId)) * kPrime;
    for (const auto &operand : rec.operands) {
        h = (h ^ operand.size()) * kPrime;
        for (const std::uint64_t w : operand)
            h = (h ^ w) * kPrime;
    }
    return h;
}

std::uint64_t
loadElem(Addr addr)
{
    std::uint64_t v;
    std::memcpy(&v, sim::hostPtr(addr), sizeof(v));
    return v;
}

} // namespace

TmuEngine::TmuEngine(int coreId, const EngineConfig &cfg,
                     sim::MemorySystem &mem, const TmuProgram &program)
    : coreId_(coreId), cfg_(cfg), mem_(mem), prog_(program),
      plan_(planQueues(program, cfg.perLaneBytes)),
      outqBuf_(2 * cfg.chunkBytes),
      occupancyHist_(0.0, static_cast<double>(2 * cfg.chunkBytes), 16)
{
    prog_.validate(cfg.lanes);
    TMU_ASSERT(prog_.layer(0).tus[0].kind == TraversalKind::Dense,
               "layer 0 must be a dense traversal");

    tus_.resize(static_cast<size_t>(prog_.numLayers()));
    tgs_.resize(static_cast<size_t>(prog_.numLayers()));
    laneRr_.assign(static_cast<size_t>(prog_.numLayers()), 0);

    for (int l = 0; l < prog_.numLayers(); ++l) {
        const LayerDesc &layer = prog_.layer(l);
        tgs_[static_cast<size_t>(l)].layer = l;
        tgs_[static_cast<size_t>(l)].events.reset(cfg.eventQueueDepth);
        for (int r = 0; r < layer.lanes(); ++r) {
            TuState tu;
            tu.ref = {l, r};
            tu.q.reset(static_cast<size_t>(plan_.depth(l)));
            const TuDesc &desc = prog_.tu(tu.ref);
            for (size_t s = 0; s < desc.streams.size(); ++s) {
                if (desc.streams[s].kind == StreamKind::Mem) {
                    tu.memOrdinalOfSlot.push_back(
                        static_cast<int>(tu.slotOfMemOrdinal.size()));
                    tu.slotOfMemOrdinal.push_back(static_cast<int>(s));
                } else {
                    tu.memOrdinalOfSlot.push_back(-1);
                }
            }
            tu.slotPtr.resize(tu.slotOfMemOrdinal.size());
            tus_[static_cast<size_t>(l)].push_back(std::move(tu));
        }
    }
    stack_.push_back(0);
    outstanding_.reserve(static_cast<size_t>(cfg.maxOutstanding));
}

LaneMask
TmuEngine::activeForStep(int layer, LaneMask parentMask) const
{
    const auto lanes = static_cast<unsigned>(prog_.layer(layer).lanes());
    if (layer == 0)
        return LaneMask::firstN(lanes);
    switch (prog_.layer(layer - 1).mode) {
      case GroupMode::BCast:
        return LaneMask::firstN(lanes);
      case GroupMode::Single:
      case GroupMode::Keep: {
        LaneMask m;
        m.set(0);
        return m;
      }
      default:
        return parentMask & LaneMask::firstN(lanes);
    }
}

std::uint64_t
TmuEngine::resolveValue(const TuState &tu, const StreamRef &ref,
                        const std::vector<std::uint64_t> &vals) const
{
    if (ref.tu == tu.ref)
        return vals[static_cast<size_t>(ref.slot)];
    // Leftward reference: read from the instance's parent-step view.
    TMU_ASSERT(tu.hasView);
    TMU_ASSERT(tu.view.mask.test(static_cast<unsigned>(ref.tu.lane)));
    return tu.view.vals[static_cast<size_t>(ref.tu.lane)]
                       [static_cast<size_t>(ref.slot)];
}

Cycle
TmuEngine::parentReady(const TuState &tu, const TimedElem &e,
                       const StreamRef &parent) const
{
    if (!parent.valid() || !(parent.tu == tu.ref))
        return 0; // leftward/absent: ready when the instance started

    const StreamDesc &pd = prog_.stream(parent);
    if (pd.kind == StreamKind::Mem) {
        const int ord = tu.memOrdinalOfSlot[static_cast<size_t>(
            parent.slot)];
        const MemSlotState &ms = e.mem[static_cast<size_t>(ord)];
        return ms.requested ? ms.ready : kNever;
    }
    return slotDepReady(tu, e, parent.slot);
}

Cycle
TmuEngine::slotDepReady(const TuState &tu, const TimedElem &e,
                        int slot) const
{
    const StreamDesc &sd = prog_.stream({tu.ref, slot});
    switch (sd.kind) {
      case StreamKind::Ite:
      case StreamKind::Fwd:
        return 0;
      case StreamKind::Mem:
      case StreamKind::Lin:
      case StreamKind::Map:
      case StreamKind::Ldr:
        break;
    }
    const Cycle a = parentReady(tu, e, sd.parent);
    const Cycle b = parentReady(tu, e, sd.parent2);
    if (a == kNever || b == kNever)
        return kNever;
    return std::max(a, b);
}

bool
TmuEngine::elemReady(const TuState &tu, const TimedElem &e,
                     Cycle now) const
{
    if (e.end)
        return true;
    for (size_t m = 0; m < e.mem.size(); ++m) {
        if (!e.mem[m].requested || e.mem[m].ready > now)
            return false;
    }
    (void)tu;
    return true;
}

Index
TmuEngine::mergeKeyOf(const TuState &tu, const TimedElem &e) const
{
    const TuDesc &desc = prog_.tu(tu.ref);
    const int slot = desc.mergeKey.valid() ? desc.mergeKey.slot : 0;
    return static_cast<Index>(e.vals[static_cast<size_t>(slot)]);
}

void
TmuEngine::pushElement(TuState &tu, Cycle now)
{
    const TuDesc &desc = prog_.tu(tu.ref);
    TimedElem e;
    e.pushed = now;
    e.vals.resize(desc.streams.size(), 0);
    e.mem.resize(tu.slotOfMemOrdinal.size());

    for (size_t s = 0; s < desc.streams.size(); ++s) {
        const StreamDesc &sd = desc.streams[s];
        switch (sd.kind) {
          case StreamKind::Ite:
            e.vals[s] = static_cast<std::uint64_t>(tu.cur);
            break;
          case StreamKind::Mem: {
            auto x = static_cast<Index>(
                resolveValue(tu, sd.parent, e.vals));
            if (sd.parent2.valid())
                x += static_cast<Index>(
                    resolveValue(tu, sd.parent2, e.vals));
            e.vals[s] = loadElem(sd.base + static_cast<Addr>(x) * 8);
            break;
          }
          case StreamKind::Lin: {
            const auto x = static_cast<Index>(
                resolveValue(tu, sd.parent, e.vals));
            auto v = static_cast<Index>(
                sd.linA * static_cast<double>(x) + sd.linB);
            if (sd.parent2.valid())
                v += static_cast<Index>(
                    resolveValue(tu, sd.parent2, e.vals));
            e.vals[s] = static_cast<std::uint64_t>(v);
            break;
          }
          case StreamKind::Map: {
            const auto x = static_cast<Index>(
                resolveValue(tu, sd.parent, e.vals));
            TMU_ASSERT(x >= 0 &&
                       static_cast<size_t>(x) < sd.map.size());
            e.vals[s] = static_cast<std::uint64_t>(
                sd.map[static_cast<size_t>(x)]);
            break;
          }
          case StreamKind::Ldr: {
            auto x = static_cast<Index>(
                resolveValue(tu, sd.parent, e.vals));
            if (sd.parent2.valid())
                x += static_cast<Index>(
                    resolveValue(tu, sd.parent2, e.vals));
            e.vals[s] = sd.base + static_cast<Addr>(x) * 8;
            break;
          }
          case StreamKind::Fwd:
            e.vals[s] = resolveValue(tu, sd.fwdSource, e.vals);
            break;
        }
    }
    tu.q.push(std::move(e));
    ++stats_.elementsPushed;
    tu.cur += desc.stride;
}

bool
TmuEngine::tuDone(const TuState &tu) const
{
    return tu.phase == TuState::Phase::Done;
}

void
TmuEngine::tickTus(Cycle now)
{
    for (int l = 0; l < prog_.numLayers(); ++l) {
        for (TuState &tu : tus_[static_cast<size_t>(l)]) {
            const TuDesc &desc = prog_.tu(tu.ref);
            switch (tu.phase) {
              case TuState::Phase::WaitStep: {
                if (l == 0) {
                    changed_ = true;
                    if (tu.stepCursor > 0) {
                        tu.phase = TuState::Phase::Done;
                        break;
                    }
                    tu.cur = desc.beg;
                    tu.end = desc.end;
                    tu.stepCursor = 1;
                    tu.phase = TuState::Phase::Iter;
                    break;
                }
                TgState &prev = tgs_[static_cast<size_t>(l - 1)];
                bool started = false;
                while (tu.stepCursor < prev.stepsProduced) {
                    changed_ = true;
                    const StepRecord &rec =
                        prev.steps[static_cast<size_t>(
                            tu.stepCursor - prev.stepsBase)];
                    const LaneMask down = activeForStep(l, rec.mask);
                    ++tu.stepCursor;
                    if (!down.test(static_cast<unsigned>(tu.ref.lane)))
                        continue;
                    tu.view = rec;
                    tu.hasView = true;
                    switch (desc.kind) {
                      case TraversalKind::Dense:
                        tu.cur = desc.beg;
                        tu.end = desc.end;
                        break;
                      case TraversalKind::Range: {
                        const auto beg = static_cast<Index>(
                            resolveValue(tu, desc.begStream, {}));
                        const auto end = static_cast<Index>(
                            resolveValue(tu, desc.endStream, {}));
                        tu.cur = beg + desc.offset;
                        tu.end = end;
                        break;
                      }
                      case TraversalKind::Index: {
                        const auto beg = static_cast<Index>(
                            resolveValue(tu, desc.begStream, {}));
                        tu.cur = beg + desc.offset;
                        tu.end = beg + desc.size;
                        break;
                      }
                    }
                    tu.phase = TuState::Phase::Iter;
                    started = true;
                    break;
                }
                if (!started && prev.doneFlag &&
                    tu.stepCursor >= prev.stepsProduced) {
                    tu.phase = TuState::Phase::Done;
                    changed_ = true;
                }
                break;
              }
              case TuState::Phase::Iter: {
                if (l == 0 && quiesceRequested_ && tu.cur < tu.end) {
                    resumeCur_ = tu.cur;
                    tu.cur = tu.end; // stop at this element boundary
                    changed_ = true;
                }
                if (tu.cur >= tu.end) {
                    tu.phase = TuState::Phase::PushEnd;
                    changed_ = true;
                    // fall through to PushEnd handling next cycle
                    break;
                }
                if (tu.q.full())
                    break;
                pushElement(tu, now);
                changed_ = true;
                if (tu.cur >= tu.end)
                    tu.phase = TuState::Phase::PushEnd;
                break;
              }
              case TuState::Phase::PushEnd: {
                if (tu.q.full())
                    break;
                TimedElem end;
                end.end = true;
                end.pushed = now;
                tu.q.push(std::move(end));
                tu.phase = TuState::Phase::WaitStep;
                changed_ = true;
                break;
              }
              case TuState::Phase::Done:
                break;
            }
        }
    }
}

void
TmuEngine::tickArbiter(Cycle now)
{
    // Retire completed requests (frees outstanding slots).
    for (size_t i = 0; i < outstanding_.size();) {
        if (outstanding_[i] <= now) {
            outstanding_[i] = outstanding_.back();
            outstanding_.pop_back();
        } else {
            ++i;
        }
    }
    if (inflightLines_.size() > 1024) {
        for (auto it = inflightLines_.begin();
             it != inflightLines_.end();) {
            if (it->second < now)
                it = inflightLines_.erase(it);
            else
                ++it;
        }
    }

    int issued = 0;
    arbLayersAdvanced_ = prog_.numLayers();
    for (int l = 0; l < prog_.numLayers(); ++l) {
        auto &layerTus = tus_[static_cast<size_t>(l)];
        const int lanes = static_cast<int>(layerTus.size());
        for (int k = 0; k < lanes; ++k) {
            const int r = (laneRr_[static_cast<size_t>(l)] + k) % lanes;
            TuState &tu = layerTus[static_cast<size_t>(r)];
            for (size_t m = 0; m < tu.slotOfMemOrdinal.size(); ++m) {
                auto &sp = tu.slotPtr[m];
                while (sp.elem < tu.q.size()) {
                    TimedElem &e = tu.q.peek(sp.elem);
                    if (e.end) {
                        ++sp.elem;
                        continue;
                    }
                    MemSlotState &ms = e.mem[m];
                    if (ms.requested) {
                        ++sp.elem;
                        continue;
                    }
                    const int slot = tu.slotOfMemOrdinal[m];
                    // In-order within the queue: wait for the address
                    // dependency of the oldest unrequested element.
                    if (slotDepReady(tu, e, slot) > now)
                        break;
                    const StreamDesc &sd = prog_.stream({tu.ref, slot});
                    auto x = static_cast<Index>(
                        resolveValue(tu, sd.parent, e.vals));
                    if (sd.parent2.valid())
                        x += static_cast<Index>(
                            resolveValue(tu, sd.parent2, e.vals));
                    const Addr addr =
                        sd.base + static_cast<Addr>(x) * 8;
                    const Addr line = lineAddr(addr);
                    if (line == sp.lastLine) {
                        // Same cacheline as the previous element:
                        // piggyback on that request.
                        changed_ = true;
                        ms.requested = true;
                        ms.ready = std::max(sp.lastReady, now);
                        ++stats_.coalescedLoads;
                        ++sp.elem;
                        continue;
                    }
                    if (const auto it = inflightLines_.find(line);
                        it != inflightLines_.end() &&
                        it->second >= now) {
                        // Another lane/stream already requested this
                        // line: share the in-flight request.
                        changed_ = true;
                        ms.requested = true;
                        ms.ready = it->second;
                        sp.lastLine = line;
                        sp.lastReady = it->second;
                        ++stats_.coalescedLoads;
                        ++sp.elem;
                        continue;
                    }
                    if (static_cast<int>(outstanding_.size()) >=
                            cfg_.maxOutstanding ||
                        issued >= cfg_.issuePerCycle) {
                        // Layers >= l keep their round-robin pointer
                        // frozen this cycle (the back-fill replays
                        // exactly this).
                        arbLayersAdvanced_ = l;
                        return;
                    }
                    // Any access attempt — accepted or MSHR-rejected —
                    // touches cache counters, so the tick is never a
                    // no-op and the retry happens every cycle, exactly
                    // as in the per-cycle loop.
                    changed_ = true;
                    const sim::MemAccess res =
                        mem_.tmuAccess(coreId_, addr, now);
                    if (!res.accepted)
                        break; // LLC MSHRs full: retry next cycle
                    Cycle ready = res.complete;
                    if (faults_ != nullptr &&
                        faults_->shouldInject(
                            sim::FaultKind::FillDelay)) {
                        ready += faults_->extraCycles(
                            sim::FaultKind::FillDelay);
                    }
                    ms.requested = true;
                    ms.ready = ready;
                    sp.lastLine = line;
                    sp.lastReady = ready;
                    inflightLines_[line] = ready;
                    outstanding_.push_back(ready);
                    ++stats_.requestsIssued;
                    ++issued;
                    ++sp.elem;
                }
            }
        }
        laneRr_[static_cast<size_t>(l)] =
            (laneRr_[static_cast<size_t>(l)] + 1) % std::max(1, lanes);
    }
}

void
TmuEngine::popTuHead(int layer, int lane)
{
    TuState &tu = tus_[static_cast<size_t>(layer)][static_cast<size_t>(
        lane)];
    tu.q.pop();
    for (auto &sp : tu.slotPtr) {
        if (sp.elem > 0)
            --sp.elem;
    }
}

std::vector<OutqRecord>
TmuEngine::makeRecords(int layer, CallbackEvent ev, LaneMask mask,
                       bool withOperands)
{
    const LayerDesc &desc = prog_.layer(layer);
    auto &layerTus = tus_[static_cast<size_t>(layer)];
    std::vector<OutqRecord> recs;
    for (const CallbackDesc &cb : desc.callbacks) {
        if (cb.event != ev)
            continue;
        OutqRecord rec;
        rec.layer = layer;
        rec.event = ev;
        rec.callbackId = cb.callbackId;
        rec.mask = mask;
        for (int o : cb.operands) {
            std::vector<std::uint64_t> vals;
            if (o == kMskOperand) {
                vals.push_back(mask.bits());
            } else if (withOperands) {
                const GroupStreamDesc &gs =
                    desc.groupStreams[static_cast<size_t>(o)];
                for (unsigned r = 0; r < gs.perLane.size(); ++r) {
                    if (!mask.test(r))
                        continue;
                    const TimedElem &head = layerTus[r].q.peek(0);
                    vals.push_back(head.vals[static_cast<size_t>(
                        gs.perLane[r].slot)]);
                }
            }
            rec.operands.push_back(std::move(vals));
        }
        recs.push_back(std::move(rec));
    }
    return recs;
}

TmuEngine::IterOutcome
TmuEngine::tgIterateOnce(TgState &tg, Cycle now)
{
    const int l = tg.layer;
    const LayerDesc &layer = prog_.layer(l);
    auto &layerTus = tus_[static_cast<size_t>(l)];
    const GroupMode mode = layer.mode;
    const bool singleLane = mode == GroupMode::Single ||
                            mode == GroupMode::BCast ||
                            mode == GroupMode::Keep;

    // Determine the lanes we co-iterate this step.
    LaneMask lanes;
    if (singleLane) {
        const int lane = mode == GroupMode::Keep ? layer.keepLane : 0;
        if (tg.active.test(static_cast<unsigned>(lane)))
            lanes.set(static_cast<unsigned>(lane));
    } else {
        lanes = tg.active;
    }
    if (lanes.empty()) {
        tg.phase = TgState::Phase::Finish;
        return IterOutcome::Transitioned;
    }

    // All co-iterated lanes need a queue head.
    LaneMask have; // lanes with a data (non-END) head
    for (int r = 0; r < layer.lanes(); ++r) {
        if (!lanes.test(static_cast<unsigned>(r)))
            continue;
        TuState &tu = layerTus[static_cast<size_t>(r)];
        if (tu.q.empty())
            return IterOutcome::Blocked;
        if (!tu.q.peek(0).end)
            have.set(static_cast<unsigned>(r));
    }

    if (mode == GroupMode::ConjMrg && have != lanes) {
        // Some lane ran dry: intersection is over; discard the
        // remainder of the other lanes (Flush).
        tg.flushRemaining = lanes;
        tg.phase = TgState::Phase::Flush;
        return IterOutcome::Transitioned;
    }
    if (have.empty()) {
        // All heads are ENDs: consume them and finish.
        for (int r = 0; r < layer.lanes(); ++r) {
            if (lanes.test(static_cast<unsigned>(r)))
                popTuHead(l, r);
        }
        tg.phase = TgState::Phase::Finish;
        return IterOutcome::Transitioned;
    }

    // Data heads we are about to read must be ready.
    for (int r = 0; r < layer.lanes(); ++r) {
        if (!have.test(static_cast<unsigned>(r)))
            continue;
        TuState &tu = layerTus[static_cast<size_t>(r)];
        if (!elemReady(tu, tu.q.peek(0), now))
            return IterOutcome::Blocked;
    }

    // Compute the step predicate.
    LaneMask predicate;
    if (mode == GroupMode::LockStep || singleLane) {
        predicate = have;
    } else {
        Index minKey = 0;
        bool first = true;
        for (int r = 0; r < layer.lanes(); ++r) {
            if (!have.test(static_cast<unsigned>(r)))
                continue;
            const TuState &tu = layerTus[static_cast<size_t>(r)];
            const Index key = mergeKeyOf(tu, tu.q.peek(0));
            if (first || key < minKey) {
                minKey = key;
                first = false;
            }
        }
        for (int r = 0; r < layer.lanes(); ++r) {
            if (!have.test(static_cast<unsigned>(r)))
                continue;
            const TuState &tu = layerTus[static_cast<size_t>(r)];
            if (mergeKeyOf(tu, tu.q.peek(0)) == minKey)
                predicate.set(static_cast<unsigned>(r));
        }
    }

    const bool emit = mode != GroupMode::ConjMrg || predicate == lanes;
    const LaneMask down = l + 1 < prog_.numLayers()
                              ? activeForStep(l + 1, predicate)
                              : LaneMask();
    const bool descend = !down.empty();

    if (emit) {
        std::vector<OutqRecord> recs =
            makeRecords(l, CallbackEvent::GroupIte, predicate, true);
        const bool needToken = descend || !recs.empty();
        if (needToken && tg.events.full())
            return IterOutcome::Blocked; // backpressure
        if (descend && tg.steps.size() >= cfg_.stepQueueDepth)
            return IterOutcome::Blocked; // backpressure
        if (needToken) {
            EventToken tok;
            tok.kind = CallbackEvent::GroupIte;
            tok.descend = descend;
            tok.records = std::move(recs);
            tg.events.push(std::move(tok));
        }
        if (descend) {
            StepRecord step;
            step.mask = predicate;
            step.vals.resize(static_cast<size_t>(layer.lanes()));
            for (int r = 0; r < layer.lanes(); ++r) {
                if (predicate.test(static_cast<unsigned>(r))) {
                    step.vals[static_cast<size_t>(r)] =
                        layerTus[static_cast<size_t>(r)].q.peek(0).vals;
                }
            }
            tg.steps.push_back(std::move(step));
            ++tg.stepsProduced;
        }
    }

    // Consume the stepped lanes.
    for (int r = 0; r < layer.lanes(); ++r) {
        if (predicate.test(static_cast<unsigned>(r)))
            popTuHead(l, r);
    }
    return emit ? IterOutcome::Emitted : IterOutcome::Skipped;
}

void
TmuEngine::tickTgs(Cycle now)
{
    for (int l = 0; l < prog_.numLayers(); ++l) {
        TgState &tg = tgs_[static_cast<size_t>(l)];
        auto &layerTus = tus_[static_cast<size_t>(l)];
        const LayerDesc &layer = prog_.layer(l);

        switch (tg.phase) {
          case TgState::Phase::WaitParent: {
            if (l == 0) {
                changed_ = true;
                if (tg.parentCursor > 0) {
                    tg.doneFlag = true;
                    tg.phase = TgState::Phase::Done;
                    break;
                }
                tg.active = activeForStep(0, LaneMask());
                tg.phase = TgState::Phase::Begin;
                break;
            }
            TgState &prev = tgs_[static_cast<size_t>(l - 1)];
            if (tg.parentCursor < prev.stepsProduced) {
                const StepRecord &rec = prev.steps[static_cast<size_t>(
                    tg.parentCursor - prev.stepsBase)];
                tg.active = activeForStep(l, rec.mask);
                tg.phase = TgState::Phase::Begin;
                changed_ = true;
            } else if (prev.doneFlag) {
                tg.doneFlag = true;
                tg.phase = TgState::Phase::Done;
                changed_ = true;
            }
            break;
          }
          case TgState::Phase::Begin: {
            if (tg.events.full())
                break;
            EventToken tok;
            tok.kind = CallbackEvent::GroupBegin;
            tok.records = makeRecords(l, CallbackEvent::GroupBegin,
                                      tg.active, false);
            tg.events.push(std::move(tok));
            tg.phase = TgState::Phase::Iterate;
            changed_ = true;
            break;
          }
          case TgState::Phase::Iterate: {
            // Conjunctive merges fast-forward through mismatching
            // (non-emitting) steps via a comparator tree over the
            // queue heads; everything else retires one gite per cycle.
            int budget = layer.mode == GroupMode::ConjMrg
                             ? cfg_.conjSkipPerCycle
                             : 1;
            while (budget-- > 0 &&
                   tg.phase == TgState::Phase::Iterate) {
                const IterOutcome out = tgIterateOnce(tg, now);
                if (out != IterOutcome::Blocked)
                    changed_ = true;
                if (out == IterOutcome::Blocked ||
                    out == IterOutcome::Emitted)
                    break;
            }
            break;
          }
          case TgState::Phase::Flush: {
            // Conjunctive early exit: discard until every co-iterated
            // lane's END is consumed. Lanes whose END has already been
            // seen must not be drained further (their queues may hold
            // the next instance).
            for (int r = 0; r < layer.lanes(); ++r) {
                if (!tg.flushRemaining.test(static_cast<unsigned>(r)))
                    continue;
                TuState &tu = layerTus[static_cast<size_t>(r)];
                while (!tu.q.empty()) {
                    const bool isEnd = tu.q.peek(0).end;
                    popTuHead(l, r);
                    changed_ = true;
                    if (isEnd) {
                        tg.flushRemaining.clear(
                            static_cast<unsigned>(r));
                        break;
                    }
                }
            }
            if (tg.flushRemaining.empty())
                tg.phase = TgState::Phase::Finish;
            break;
          }
          case TgState::Phase::Finish: {
            if (tg.events.full())
                break;
            EventToken tok;
            tok.kind = CallbackEvent::GroupEnd;
            tok.records = makeRecords(l, CallbackEvent::GroupEnd,
                                      tg.active, false);
            tg.events.push(std::move(tok));
            ++tg.parentCursor;
            tg.phase = TgState::Phase::WaitParent;
            changed_ = true;
            break;
          }
          case TgState::Phase::Done:
            break;
        }
    }

    // Drop fully-consumed step records.
    for (int l = 0; l + 1 < prog_.numLayers(); ++l)
        popConsumedSteps(l);
}

void
TmuEngine::popConsumedSteps(int layer)
{
    TgState &tg = tgs_[static_cast<size_t>(layer)];
    std::uint64_t minSeq = tgs_[static_cast<size_t>(layer + 1)]
                               .parentCursor;
    for (const TuState &tu : tus_[static_cast<size_t>(layer + 1)])
        minSeq = std::min(minSeq, tu.stepCursor);
    while (!tg.steps.empty() && tg.stepsBase < minSeq) {
        tg.steps.pop_front();
        ++tg.stepsBase;
        changed_ = true;
    }
}

int
TmuEngine::fillingChunk(Cycle now)
{
    if (curChunk_ >= 0)
        return curChunk_;
    // Chunks fill (and are consumed) in strict alternation.
    if (chunks_[nextFill_].state != Chunk::State::Free)
        return -1;
    curChunk_ = nextFill_;
    Chunk &ch = chunks_[curChunk_];
    ch.state = Chunk::State::Filling;
    ch.usedBytes = 0;
    ch.fillStart = now;
    ch.records.clear();
    ch.checksum = 0xcbf29ce484222325ULL; // FNV-1a offset basis
    ch.verified = false;
    ch.corrupted.clear();
    return curChunk_;
}

void
TmuEngine::writeRecord(Chunk &ch, OutqRecord rec, Addr addr)
{
    // Checksum the true payload, then (under injection) corrupt the
    // stored copy — the mismatch is what the consumer-side verify in
    // popRecord must catch.
    ch.checksum = foldRecord(ch.checksum, rec);
    ch.records.emplace_back(std::move(rec), addr);
    if (faults_ == nullptr ||
        !faults_->shouldInject(sim::FaultKind::OutqCorrupt))
        return;
    OutqRecord &stored = ch.records.back().first;
    for (std::size_t o = 0; o < stored.operands.size(); ++o) {
        if (stored.operands[o].empty())
            continue;
        CorruptedWord cw;
        cw.record = ch.records.size() - 1;
        cw.operand = o;
        cw.word = 0;
        cw.original = stored.operands[o][0];
        stored.operands[o][0] = faults_->corruptWord(cw.original);
        ch.corrupted.push_back(cw);
        return;
    }
    // No payload words to corrupt: the injection fizzles harmlessly.
    faults_->recordDetected(sim::FaultKind::OutqCorrupt);
}

bool
TmuEngine::verifyChunk(Chunk &ch, Cycle now)
{
    if (ch.verified)
        return now >= ch.readyAt;
    std::uint64_t sum = 0xcbf29ce484222325ULL;
    for (const auto &[rec, addr] : ch.records)
        sum = foldRecord(sum, rec);
    ch.verified = true;
    if (sum == ch.checksum) {
        TMU_ASSERT(ch.corrupted.empty(),
                   "payload corruption escaped the chunk checksum");
        return now >= ch.readyAt;
    }
    // Detected: restore the payload (modeled retransmit) and charge
    // the recovery penalty before the chunk becomes consumable.
    TMU_ASSERT(faults_ != nullptr && !ch.corrupted.empty(),
               "chunk checksum mismatch without injected corruption");
    for (const CorruptedWord &cw : ch.corrupted) {
        ch.records[cw.record].first.operands[cw.operand][cw.word] =
            cw.original;
        faults_->recordDetected(sim::FaultKind::OutqCorrupt);
    }
    ch.corrupted.clear();
    Cycle penalty =
        faults_->extraCycles(sim::FaultKind::OutqCorrupt);
    if (penalty == 0)
        penalty = kDefaultRecoveryCycles;
    ch.readyAt = now + penalty;
    return false;
}

void
TmuEngine::sealChunk(int c, Cycle now)
{
    Chunk &ch = chunks_[c];
    TMU_ASSERT(ch.state == Chunk::State::Filling);
    ch.state = Chunk::State::Sealed;
    ch.sealAt = now;
    ch.readyAt = now;
    const Addr base = sim::canonBase(outqBuf_.data()) +
                      static_cast<Addr>(c) * cfg_.chunkBytes;
    for (std::size_t off = 0; off < ch.usedBytes; off += kLineBytes)
        mem_.outqInstall(coreId_, base + off, now);
    ++stats_.chunksSealed;
    if (tracer_ != nullptr) {
        tracer_->complete(tracePid_, 200 + coreId_, "tmu", "chunk_fill",
                          ch.fillStart,
                          std::max<Cycle>(1, now - ch.fillStart));
    }
    curChunk_ = -1;
    nextFill_ = 1 - nextFill_;
    changed_ = true;
    // A parked consumer (supply-starved core) can pull from this chunk
    // now; fired forward in scheduler order, so the core sees the seal
    // on this very cycle — as in the per-cycle loop.
    consumerWake_.wake();
}

void
TmuEngine::tickSerializer(Cycle now)
{
    int processed = 0;
    while (!serializerDone_ && processed < cfg_.recordsPerCycle) {
        if (stack_.empty()) {
            serializerDone_ = true;
            changed_ = true;
            break;
        }
        TgState &tg = tgs_[static_cast<size_t>(stack_.back())];
        if (tg.events.empty())
            break; // ow4p: waiting for the TG to produce
        EventToken &tok = tg.events.peek(0);

        // Write the token's records into the outQ.
        bool blocked = false;
        while (!tok.records.empty()) {
            OutqRecord &rec = tok.records.front();
            const std::size_t bytes = rec.bytes();
            TMU_ASSERT(bytes <= cfg_.chunkBytes,
                       "record larger than an outQ chunk");
            const int c = fillingChunk(now);
            if (c < 0) {
                blocked = true; // both chunks busy: ow4n
                break;
            }
            Chunk &ch = chunks_[c];
            if (ch.usedBytes + bytes > cfg_.chunkBytes) {
                sealChunk(c, now);
                continue;
            }
            const Addr addr =
                sim::canonBase(outqBuf_.data()) +
                static_cast<Addr>(c) * cfg_.chunkBytes + ch.usedBytes;
            ch.usedBytes += bytes;
            stats_.outqBytes += bytes;
            occupancyBytes_ += bytes;
            ++stats_.recordsEmitted;
            writeRecord(ch, std::move(rec), addr);
            tok.records.erase(tok.records.begin());
            changed_ = true;
        }
        if (blocked)
            break;

        // Apply the token's structural effect.
        const int layer = stack_.back();
        if (tok.kind == CallbackEvent::GroupIte && tok.descend) {
            stack_.push_back(layer + 1);
        } else if (tok.kind == CallbackEvent::GroupEnd) {
            stack_.pop_back();
            if (stack_.empty())
                serializerDone_ = true;
        }
        tg.events.pop();
        ++processed;
        changed_ = true;
    }

    // Flush the partial last chunk once everything else finished.
    if (serializerDone_ && curChunk_ >= 0) {
        if (chunks_[curChunk_].records.empty()) {
            chunks_[curChunk_].state = Chunk::State::Free;
            curChunk_ = -1;
            changed_ = true;
        } else {
            sealChunk(curChunk_, now);
        }
    }
}

bool
TmuEngine::tick(Cycle now)
{
    // Back-fill the cycles slept since the last tick (sim/sched.hpp):
    // they were provable no-ops, so replay exactly the per-cycle
    // bookkeeping the tick-every-cycle loop would have done. Gated on
    // a bound scheduler so direct-tick unit tests see no change.
    if (selfWake_.bound() && now > lastTicked_ + 1) {
        const Cycle gap = now - lastTicked_ - 1;
        stats_.busyCycles += gap;
        stats_.*sleepAttr_ += gap;
        // Occupancy samples at 32-cycle boundaries inside the window;
        // occupancyBytes_ was frozen (the engine only sleeps with no
        // sealed chunk, so the consumer could not pop while we slept).
        const Cycle samples = (now - 1) / 32 - lastTicked_ / 32;
        for (Cycle s = 0; s < samples; ++s)
            occupancyHist_.add(static_cast<double>(occupancyBytes_));
        // Round-robin pointers advance once per cycle up to the layer
        // where the arbiter stopped (frozen state => same stop layer
        // every slept cycle).
        for (int l = 0; l < arbLayersAdvanced_; ++l) {
            const auto lanes = static_cast<Cycle>(std::max<std::size_t>(
                1, tus_[static_cast<size_t>(l)].size()));
            laneRr_[static_cast<size_t>(l)] = static_cast<int>(
                (static_cast<Cycle>(laneRr_[static_cast<size_t>(l)]) +
                 gap % lanes) %
                lanes);
        }
    }
    if (producerDone())
        return false;
    lastTicked_ = now;
    changed_ = false;
    ++stats_.busyCycles;
    tickTgs(now);
    tickTus(now);
    tickArbiter(now);
    tickSerializer(now);

    // Cycle attribution: a productive cycle is charged to the
    // marshaling phase it advanced; an idle one to whichever resource
    // it waited on. Slept cycles reuse the idle classification — the
    // engine only sleeps after a no-change tick, with this state
    // frozen for the whole window.
    Cycle EngineStats::*idle = outstanding_.empty()
                                   ? &EngineStats::backpressureCycles
                                   : &EngineStats::memsysStallCycles;
    if (changed_) {
        stats_.*(curChunk_ >= 0    ? &EngineStats::fillCycles
                 : serializerDone_ ? &EngineStats::drainCycles
                                   : &EngineStats::traverseCycles) += 1;
    } else {
        stats_.*idle += 1;
    }
    sleepAttr_ = idle;

    if ((now & 31) == 0) {
        occupancyHist_.add(static_cast<double>(occupancyBytes_));
        if (tracer_ != nullptr) {
            tracer_->counter(tracePid_,
                             "tmu" + std::to_string(coreId_) + ".outq",
                             "bytes",
                             static_cast<double>(occupancyBytes_), now);
        }
    }
    if (tracer_ != nullptr) {
        const char *state = curChunk_ >= 0      ? "fill"
                            : serializerDone_   ? "drain"
                                                : "traverse";
        tracer_->phase(tracePid_, 100 + coreId_, state, now);
    }
    if (producerDone()) {
        // Marshaling just finished: a parked consumer must run to
        // observe it (and drain/complete), even though no seal fired.
        consumerWake_.wake();
    }
    return true;
}

Cycle
TmuEngine::wakeHint(Cycle now) const
{
    if (tracer_ != nullptr)
        return now + 1; // phase/counter tracks must stay cycle-dense
    if (changed_ || producerDone())
        return now + 1;
    if (chunks_[0].state == Chunk::State::Sealed ||
        chunks_[1].state == Chunk::State::Sealed)
        return now + 1; // consumer pops could move occupancy any cycle
    // Quiescent and nothing consumable: the next possible change is
    // the earliest in-flight memory completion. None => parked (only
    // a port wake — or the watchdog, if this is a real deadlock —
    // ends the wait).
    Cycle wake = sim::kWakeNever;
    for (const Cycle c : outstanding_) {
        if (c > now && c < wake)
            wake = c;
    }
    return wake;
}

void
TmuEngine::bindScheduler(sim::Scheduler &sched, int handle)
{
    selfWake_.bind(sched, handle);
}

Cycle
TmuEngine::recordAvailableAt(Cycle now) const
{
    const Chunk &ch = chunks_[consumeChunk_];
    if (ch.state == Chunk::State::Sealed) {
        // Polls before the seal/backpressure gate are side-effect
        // free; from the gate on, every poll can draw fault RNG or
        // advance the verify clock, so the consumer must poll
        // per-cycle from there (never sleep past it).
        const Cycle gate = std::max(ch.sealAt, consumeStallUntil_);
        return gate > now ? gate : now;
    }
    // No sealed chunk: a record can only appear via sealChunk, which
    // fires the consumer-wake port.
    return sim::kWakeNever;
}

bool
TmuEngine::producerDone() const
{
    return serializerDone_ && curChunk_ < 0;
}

void
TmuEngine::setTracer(stats::TraceWriter *tracer, int pid)
{
    tracer_ = tracer;
    tracePid_ = pid;
    if (tracer != nullptr) {
        const std::string label = "tmu" + std::to_string(coreId_);
        tracer->threadName(pid, 100 + coreId_, label);
        tracer->threadName(pid, 200 + coreId_, label + ".outq");
    }
}

void
TmuEngine::registerStats(stats::StatRegistry &reg,
                         const std::string &prefix, bool extended) const
{
    reg.scalar(prefix + "requestsIssued",
               "memory requests issued to the LLC",
               &stats_.requestsIssued);
    reg.scalar(prefix + "coalescedLoads",
               "line requests coalesced across lanes",
               &stats_.coalescedLoads);
    reg.scalar(prefix + "elementsPushed",
               "elements pushed into stream queues",
               &stats_.elementsPushed);
    reg.scalar(prefix + "recordsEmitted", "outQ records emitted",
               &stats_.recordsEmitted);
    reg.scalar(prefix + "chunksSealed", "outQ chunks sealed",
               &stats_.chunksSealed);
    reg.scalar(prefix + "outqBytes", "bytes written to the outQ",
               &stats_.outqBytes);
    reg.scalar(prefix + "busyCycles", "cycles the engine was active",
               &stats_.busyCycles);
    reg.formula(prefix + "readToWriteRatio",
                "mean per-chunk consume/fill time ratio",
                [this] { return stats_.readToWriteRatio(); });
    if (extended) {
        reg.scalar(prefix + "attr.fill",
                   "busy cycles advancing state while filling a chunk",
                   &stats_.fillCycles);
        reg.scalar(prefix + "attr.traverse",
                   "busy cycles advancing state, no chunk filling",
                   &stats_.traverseCycles);
        reg.scalar(prefix + "attr.drain",
                   "busy cycles after the serializer finished",
                   &stats_.drainCycles);
        reg.scalar(prefix + "attr.memsysStall",
                   "no-progress cycles with memory requests in flight",
                   &stats_.memsysStallCycles);
        reg.scalar(prefix + "attr.backpressure",
                   "no-progress cycles waiting on the outQ consumer",
                   &stats_.backpressureCycles);
        reg.scalar(prefix + "rwChunks",
                   "chunks with consume/fill accounting",
                   &stats_.rwChunks);
        reg.histogram(prefix + "outqOccupancy",
                      "outQ resident bytes (sampled every 32 cycles)",
                      &occupancyHist_);
    }
}

std::string
TmuEngine::debugState() const
{
    std::string out;
    for (int l = 0; l < prog_.numLayers(); ++l) {
        const TgState &tg = tgs_[static_cast<size_t>(l)];
        out += detail::format(
            "TG%d phase=%d parent=%llu steps=%llu events=%zu done=%d\n",
            l, static_cast<int>(tg.phase),
            static_cast<unsigned long long>(tg.parentCursor),
            static_cast<unsigned long long>(tg.stepsProduced),
            tg.events.size(), tg.doneFlag);
        for (const TuState &tu : tus_[static_cast<size_t>(l)]) {
            out += detail::format(
                "  TU(%d,%d) phase=%d cur=%lld end=%lld step=%llu "
                "q=%zu/%zu\n",
                tu.ref.layer, tu.ref.lane, static_cast<int>(tu.phase),
                static_cast<long long>(tu.cur),
                static_cast<long long>(tu.end),
                static_cast<unsigned long long>(tu.stepCursor),
                tu.q.size(), tu.q.capacity());
        }
    }
    std::string stack = "stack=[";
    for (int s : stack_)
        stack += detail::format("%d ", s);
    out += stack + detail::format(
        "] serDone=%d curChunk=%d chunk0=%d chunk1=%d outstanding=%zu\n",
        serializerDone_, curChunk_, static_cast<int>(chunks_[0].state),
        static_cast<int>(chunks_[1].state), outstanding_.size());
    return out;
}

bool
TmuEngine::popRecord(Cycle now, OutqRecord &rec, Addr &outqAddr)
{
    Chunk &ch = chunks_[consumeChunk_];
    if (ch.state != Chunk::State::Sealed || ch.sealAt > now)
        return false;
    if (now < consumeStallUntil_)
        return false; // injected backpressure window
    if (faults_ != nullptr &&
        faults_->shouldInject(sim::FaultKind::OutqStall)) {
        Cycle stall = faults_->extraCycles(sim::FaultKind::OutqStall);
        if (stall == 0)
            stall = 16;
        consumeStallUntil_ = now + stall;
        return false;
    }
    if (!verifyChunk(ch, now))
        return false; // recovering from detected corruption
    if (!ch.consuming) {
        ch.consuming = true;
        ch.consumeStart = now;
    }
    TMU_ASSERT(!ch.records.empty());
    rec = std::move(ch.records.front().first);
    outqAddr = ch.records.front().second;
    ch.records.pop_front();
    occupancyBytes_ -= std::min(occupancyBytes_, rec.bytes());
    if (ch.records.empty()) {
        // Chunk fully consumed: account the read/write ratio and free.
        const double write = static_cast<double>(
            std::max<Cycle>(1, ch.sealAt - ch.fillStart));
        const double read = static_cast<double>(
            std::max<Cycle>(1, now - ch.consumeStart + 1));
        stats_.rwRatioSum += read / write;
        ++stats_.rwChunks;
        if (tracer_ != nullptr) {
            tracer_->complete(
                tracePid_, 200 + coreId_, "tmu", "chunk_drain",
                ch.consumeStart,
                std::max<Cycle>(1, now - ch.consumeStart + 1));
        }
        ch.state = Chunk::State::Free;
        ch.consuming = false;
        consumeChunk_ = 1 - consumeChunk_;
        // If the serializer is waiting for a free chunk, let the
        // engine run again; fired from the consumer core's tick, so
        // the (earlier-ordered) engine sees it next cycle — exactly
        // when the per-cycle loop would have seen the freed chunk.
        selfWake_.wake();
    }
    return true;
}

bool
TmuEngine::allConsumed() const
{
    return producerDone() &&
           chunks_[0].state == Chunk::State::Free &&
           chunks_[1].state == Chunk::State::Free;
}

void
TmuEngine::requestQuiesce()
{
    quiesceRequested_ = true;
    resumeCur_ = prog_.tu({0, 0}).end; // if nothing left, resume at end
}

bool
TmuEngine::quiesced() const
{
    return quiesceRequested_ && producerDone();
}

TmuContext
TmuEngine::saveContext() const
{
    TMU_ASSERT(quiesced(), "saveContext before the engine quiesced");
    TmuContext ctx;
    ctx.outerResumeBeg = resumeCur_;
    return ctx;
}

TmuProgram
TmuEngine::rebaseProgram(TmuProgram program, const TmuContext &ctx)
{
    program.setDenseBounds({0, 0}, ctx.outerResumeBeg,
                           program.tu({0, 0}).end);
    return program;
}

} // namespace tmu::engine
