#include "outq.hpp"

#include "common/log.hpp"

namespace tmu::engine {

bool
OutqSource::pullOp(sim::MicroOp &op, Cycle now)
{
    if (pendingHead_ < pending_.size()) {
        op = pending_[pendingHead_++];
        return true;
    }
    pending_.clear();
    pendingHead_ = 0;

    OutqRecord rec;
    Addr addr = 0;
    if (!engine_.popRecord(now, rec, addr))
        return false;
    ++consumed_;

    // Operand loads from the outQ chunk (L2-resident): one vector load
    // per operand, past the 8-byte record header.
    Addr off = 8;
    for (const auto &operand : rec.operands) {
        if (!operand.empty()) {
            pending_.push_back(sim::MicroOp::load(
                addr + off,
                static_cast<std::uint8_t>(operand.size() * 8)));
            off += operand.size() * 8;
        }
    }

    const auto it = handlers_.find(rec.callbackId);
    TMU_ASSERT(it != handlers_.end(),
               "no handler registered for callback %d", rec.callbackId);
    it->second(rec, pending_);

    if (pendingHead_ < pending_.size()) {
        op = pending_[pendingHead_++];
        return true;
    }
    // Handler contributed no micro-ops (e.g. a pure bookkeeping
    // callback with no operands): consume a dispatch slot anyway.
    op = sim::MicroOp::iop();
    return true;
}

bool
OutqSource::done() const
{
    return pendingHead_ >= pending_.size() && engine_.allConsumed();
}

} // namespace tmu::engine
