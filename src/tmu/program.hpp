/**
 * @file
 * TMU program representation: the dataflow configuration a host thread
 * writes into the engine (paper Sec. 4, Fig. 8).
 *
 * A program is a grid of Traversal Units (TUs): columns are *layers*
 * (one per loop level, dataflow flows rightward), rows are *lanes*
 * (parallel traversal / merging). Each TU owns a fiber-iteration
 * primitive (Table 1) and a set of data streams (Table 2); each layer
 * has a Traversal Group (TG) configured with an inter-layer mode
 * (Table 3) and callback registrations (Sec. 4.3).
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "tensor/levels.hpp"

namespace tmu::engine {

/** Fiber-iteration primitives (paper Table 1). */
enum class TraversalKind : std::uint8_t {
    Dense, //!< DnsFbrT(beg, end, stride): constant bounds
    Range, //!< RngFbrT(begStr, endStr, offset, stride): compressed lookup
    Index, //!< IdxFbrT(begStr, size, offset, stride): dense lookup
};

/** Data stream types (paper Table 2). */
enum class StreamKind : std::uint8_t {
    Ite, //!< the TU's iteration index
    Mem, //!< p[x]: load from base address + parent index
    Lin, //!< a*x + b
    Map, //!< small constant table a[x]
    Ldr, //!< &p[x]: address generation
    Fwd, //!< forwards a leftward-TU stream value along the fiber
};

/** Inter-layer group configurations (paper Table 3). */
enum class GroupMode : std::uint8_t {
    Single,   //!< iterate a single lane
    BCast,    //!< broadcast one lane's steps to a parallel group
    Keep,     //!< keep one lane out of a parallel group
    DisjMrg,  //!< disjunctively merge (union) the layer's lanes
    ConjMrg,  //!< conjunctively merge (intersect) the layer's lanes
    LockStep, //!< co-iterate the layer's lanes
};

/** Callback trigger events (paper Sec. 4.3). */
enum class CallbackEvent : std::uint8_t {
    GroupBegin, //!< gbeg: a group traversal/merge starts
    GroupIte,   //!< gite: one co-iteration/merge step
    GroupEnd,   //!< gend: the group's traversal/merge completed
};

const char *traversalKindName(TraversalKind k);
const char *streamKindName(StreamKind k);
const char *groupModeName(GroupMode m);
const char *callbackEventName(CallbackEvent e);

/** Handle of a TU within a program: (layer, lane, index). */
struct TuRef
{
    int layer = -1;
    int lane = -1;
    bool valid() const { return layer >= 0 && lane >= 0; }
    bool operator==(const TuRef &) const = default;
};

/** Handle of a data stream: the TU it lives in plus its slot. */
struct StreamRef
{
    TuRef tu;
    int slot = -1;
    bool valid() const { return tu.valid() && slot >= 0; }
    bool operator==(const StreamRef &) const = default;
};

/** How an 8-byte stream element should be interpreted. */
enum class ElemType : std::uint8_t { I64, F64 };

/** Static description of one data stream. */
struct StreamDesc
{
    StreamKind kind = StreamKind::Ite;
    ElemType elem = ElemType::I64;
    Addr base = 0;              //!< Mem/Ldr base address
    StreamRef parent;           //!< index source (defaults to own Ite)
    /**
     * Optional second index source, added to the first (the TMU's
     * address adder): mem -> p[x1 + x2], lin -> a*x1 + b + x2,
     * ldr -> &p[x1 + x2]. Invalid means unused.
     */
    StreamRef parent2;
    double linA = 1.0;          //!< Lin coefficient
    double linB = 0.0;          //!< Lin offset
    std::vector<std::int64_t> map; //!< Map table (<= 16 entries)
    StreamRef fwdSource;        //!< Fwd: leftward-TU stream to forward
    std::string name;           //!< for debugging / Table-4 bench
};

/** Static description of one TU. */
struct TuDesc
{
    TraversalKind kind = TraversalKind::Dense;
    // Dense bounds.
    Index beg = 0;
    Index end = 0;
    // Range/Index bound sources (streams of a leftward TU).
    StreamRef begStream;
    StreamRef endStream; //!< Range only
    Index size = 0;      //!< Index only
    Index offset = 0;
    Index stride = 1;
    /** Merge key for DisjMrg/ConjMrg groups (default: the ite value). */
    StreamRef mergeKey;
    /** Sizing hint: expected elements per fiber instance. */
    Index expectedFiberLen = 16;

    std::vector<StreamDesc> streams; //!< slot 0 is always the Ite stream
};

/** A group-level operand: one constituent stream per participating lane. */
struct GroupStreamDesc
{
    std::vector<StreamRef> perLane;
    ElemType elem = ElemType::F64;
    std::string name;
};

/** Special operand index meaning "marshal the msk predicate". */
inline constexpr int kMskOperand = -1;

/** One callback registration (paper: add_callback(event, id, args)). */
struct CallbackDesc
{
    CallbackEvent event = CallbackEvent::GroupIte;
    int callbackId = 0;
    /** Operand list: indexes into the layer's group streams, or
     *  kMskOperand for the predicate. */
    std::vector<int> operands;
};

/** Static description of one layer (its TG). */
struct LayerDesc
{
    GroupMode mode = GroupMode::Single;
    int keepLane = 0; //!< Keep: which lane survives
    std::vector<TuDesc> tus; //!< index = lane
    std::vector<GroupStreamDesc> groupStreams;
    std::vector<CallbackDesc> callbacks;

    int lanes() const { return static_cast<int>(tus.size()); }
};

/**
 * A complete TMU program. Built through the fluent helpers below and
 * consumed by both the functional interpreter and the timing engine.
 */
class TmuProgram
{
  public:
    /** Append a layer with the given group mode; returns its index. */
    int addLayer(GroupMode mode, int keepLane = 0);

    /** Create a DnsFbrT TU in @p layer / @p lane (Table 1). */
    TuRef dnsFbrT(int layer, int lane, Index beg, Index end,
                  Index stride = 1);

    /** Create a RngFbrT TU: bounds from leftward streams (Table 1). */
    TuRef rngFbrT(int layer, int lane, StreamRef beg, StreamRef end,
                  Index offset = 0, Index stride = 1);

    /** Create an IdxFbrT TU: beg from a leftward stream (Table 1). */
    TuRef idxFbrT(int layer, int lane, StreamRef beg, Index size,
                  Index offset = 0, Index stride = 1);

    /** The TU's implicit iteration-index stream (slot 0). */
    StreamRef iteStream(TuRef tu) const;

    /** Add a mem stream p[x (+ x2)]; @p index defaults to the TU's ite. */
    StreamRef addMemStream(TuRef tu, const void *base,
                           ElemType elem = ElemType::F64,
                           StreamRef index = {}, std::string name = {},
                           StreamRef index2 = {});

    /** Add a linear-transform stream a*x + b (+ x2). */
    StreamRef addLinStream(TuRef tu, double a, double b,
                           StreamRef index = {}, std::string name = {},
                           StreamRef index2 = {});

    /** Add a small-map stream (<= 16 entries). */
    StreamRef addMapStream(TuRef tu, std::vector<std::int64_t> map,
                           StreamRef index = {}, std::string name = {});

    /** Add an address-generation stream &p[x (+ x2)]. */
    StreamRef addLdrStream(TuRef tu, const void *base,
                           StreamRef index = {}, std::string name = {},
                           StreamRef index2 = {});

    /** Add a stream forwarding a leftward TU's value along the fiber. */
    StreamRef addFwdStream(TuRef tu, StreamRef source,
                           std::string name = {});

    /** Set the merge key stream of a TU (for DisjMrg/ConjMrg layers). */
    void setMergeKey(TuRef tu, StreamRef key);

    /** Set the sizing hint for a TU's fiber length. */
    void setExpectedFiberLen(TuRef tu, Index len);

    /**
     * Rewrite a dense TU's constant bounds (context-switch resume,
     * paper Sec. 5.6: the saved ite head becomes the new begin).
     */
    void setDenseBounds(TuRef tu, Index beg, Index end);

    /**
     * Register a group-level vector operand marshaled across lanes
     * (Fig. 8: add_vec_str). Returns the operand index for callbacks.
     */
    int addVecStream(int layer, std::vector<StreamRef> perLane,
                     ElemType elem = ElemType::F64, std::string name = {});

    /** Register a callback (Fig. 8: add_callback). */
    void addCallback(int layer, CallbackEvent event, int callbackId,
                     std::vector<int> operands);

    int numLayers() const { return static_cast<int>(layers_.size()); }
    int maxLanes() const;
    const LayerDesc &layer(int l) const
    {
        return layers_.at(static_cast<size_t>(l));
    }
    const TuDesc &tu(TuRef ref) const;
    const StreamDesc &stream(StreamRef ref) const;

    /**
     * Validate structural invariants: bounds streams come from the
     * previous layer, lanes fit the engine, parents exist. Fatals with
     * a message on violation; used at configuration time.
     */
    void validate(int engineLanes) const;

    /** Per-layer one-line description of the traversal structure. */
    std::string describe() const;

    /**
     * Table-4 style digest: the sets of traversal primitives, data
     * streams and group modes the program instantiates, plus callback
     * event counts ("traversals | streams | groups | callbacks").
     * Callback-id *values* deliberately do not appear, so legacy and
     * plan-scoped id assignments summarize identically.
     */
    std::string summary() const;

  private:
    TuRef addTu(int layer, int lane, TuDesc desc);
    StreamRef addStream(TuRef tu, StreamDesc desc);
    TuDesc &tuMutable(TuRef ref);

    std::vector<LayerDesc> layers_;
};

} // namespace tmu::engine
