/**
 * @file
 * Analytical area model calibrated to the paper's RTL results
 * (GlobalFoundries 22nm FD-SOI, Sec. 6): 8 lanes with 2 KiB of storage
 * each cost 0.0080 mm^2 per lane, 0.0704 mm^2 total, i.e. 1.52% of a
 * Neoverse N1 core scaled to the same node.
 */

#pragma once

#include <cstddef>
#include <string>

namespace tmu::engine {

/** Area estimate for one TMU configuration. */
struct AreaEstimate
{
    double laneMm2 = 0.0;    //!< one lane (logic + its storage)
    double sharedMm2 = 0.0;  //!< mergers, arbiter, outQ writer
    double totalMm2 = 0.0;
    double pctOfN1Core = 0.0;
};

/** Estimate area for @p lanes lanes with @p perLaneBytes storage. */
AreaEstimate estimateArea(int lanes, std::size_t perLaneBytes);

/** Human-readable area line for the bench harness. */
std::string describeArea(const AreaEstimate &a);

} // namespace tmu::engine
