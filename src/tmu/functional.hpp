/**
 * @file
 * Functional (untimed) TMU interpreter — the golden model.
 *
 * Executes a TmuProgram against real host memory and produces the exact
 * ordered stream of callback records the hardware would marshal into
 * the outQ. The cycle-level engine (engine.hpp) is verified against
 * this interpreter record-for-record, and every workload's TMU mapping
 * is verified against its software kernel through it.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bitvec.hpp"
#include "tmu/program.hpp"

namespace tmu::engine {

/** One marshaled callback record (what the core pops from the outQ). */
struct OutqRecord
{
    int layer = 0;
    CallbackEvent event = CallbackEvent::GroupIte;
    int callbackId = 0;
    LaneMask mask; //!< active lanes of the triggering step
    /**
     * One entry per registered operand, each holding the raw 8-byte
     * values of the active lanes in ascending lane order. For a
     * kMskOperand entry the single value is the mask bits.
     */
    std::vector<std::vector<std::uint64_t>> operands;

    /** Interpret operand @p o lane-slot @p i as a double. */
    double f64(int o, int i) const;
    /** Interpret operand @p o lane-slot @p i as an Index. */
    Index i64(int o, int i) const;
    /** Total marshaled payload in bytes (header + operands). */
    std::size_t bytes() const;
};

/** Record consumer callback. */
using RecordSink = std::function<void(const OutqRecord &)>;

/**
 * Run @p program functionally, invoking @p sink for every callback
 * record in exact sequential (nested-loop) order.
 */
void interpret(const TmuProgram &program, const RecordSink &sink);

/** Convenience: collect all records into a vector. */
std::vector<OutqRecord> interpretToVector(const TmuProgram &program);

} // namespace tmu::engine
