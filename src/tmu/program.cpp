#include "program.hpp"

#include <map>
#include <set>

#include "common/log.hpp"
#include "sim/addrspace.hpp"

namespace tmu::engine {

const char *
traversalKindName(TraversalKind k)
{
    switch (k) {
      case TraversalKind::Dense:
        return "Dns";
      case TraversalKind::Range:
        return "Rng";
      case TraversalKind::Index:
        return "Idx";
    }
    return "?";
}

const char *
streamKindName(StreamKind k)
{
    switch (k) {
      case StreamKind::Ite:
        return "ite";
      case StreamKind::Mem:
        return "mem";
      case StreamKind::Lin:
        return "lin";
      case StreamKind::Map:
        return "map";
      case StreamKind::Ldr:
        return "ldr";
      case StreamKind::Fwd:
        return "fwd";
    }
    return "?";
}

const char *
groupModeName(GroupMode m)
{
    switch (m) {
      case GroupMode::Single:
        return "Single";
      case GroupMode::BCast:
        return "BCast";
      case GroupMode::Keep:
        return "Keep";
      case GroupMode::DisjMrg:
        return "DisjMrg";
      case GroupMode::ConjMrg:
        return "ConjMrg";
      case GroupMode::LockStep:
        return "LockStep";
    }
    return "?";
}

const char *
callbackEventName(CallbackEvent e)
{
    switch (e) {
      case CallbackEvent::GroupBegin:
        return "GBEG";
      case CallbackEvent::GroupIte:
        return "GITE";
      case CallbackEvent::GroupEnd:
        return "GEND";
    }
    return "?";
}

int
TmuProgram::addLayer(GroupMode mode, int keepLane)
{
    LayerDesc layer;
    layer.mode = mode;
    layer.keepLane = keepLane;
    layers_.push_back(std::move(layer));
    return static_cast<int>(layers_.size()) - 1;
}

TuRef
TmuProgram::addTu(int layer, int lane, TuDesc desc)
{
    TMU_ASSERT(layer >= 0 && layer < numLayers(), "no such layer %d",
               layer);
    TMU_ASSERT(lane >= 0 && lane < 64);
    auto &tus = layers_[static_cast<size_t>(layer)].tus;
    if (static_cast<int>(tus.size()) <= lane)
        tus.resize(static_cast<size_t>(lane) + 1);
    TMU_ASSERT(tus[static_cast<size_t>(lane)].streams.empty(),
               "TU (%d,%d) already configured", layer, lane);

    // Slot 0 is always the implicit Ite stream.
    StreamDesc ite;
    ite.kind = StreamKind::Ite;
    ite.elem = ElemType::I64;
    ite.name = "ite";
    desc.streams.insert(desc.streams.begin(), std::move(ite));
    tus[static_cast<size_t>(lane)] = std::move(desc);
    return {layer, lane};
}

TuRef
TmuProgram::dnsFbrT(int layer, int lane, Index beg, Index end,
                    Index stride)
{
    TuDesc d;
    d.kind = TraversalKind::Dense;
    d.beg = beg;
    d.end = end;
    d.stride = stride;
    return addTu(layer, lane, std::move(d));
}

TuRef
TmuProgram::rngFbrT(int layer, int lane, StreamRef beg, StreamRef end,
                    Index offset, Index stride)
{
    TuDesc d;
    d.kind = TraversalKind::Range;
    d.begStream = beg;
    d.endStream = end;
    d.offset = offset;
    d.stride = stride;
    return addTu(layer, lane, std::move(d));
}

TuRef
TmuProgram::idxFbrT(int layer, int lane, StreamRef beg, Index size,
                    Index offset, Index stride)
{
    TuDesc d;
    d.kind = TraversalKind::Index;
    d.begStream = beg;
    d.size = size;
    d.offset = offset;
    d.stride = stride;
    return addTu(layer, lane, std::move(d));
}

StreamRef
TmuProgram::iteStream(TuRef tu) const
{
    TMU_ASSERT(tu.valid());
    return {tu, 0};
}

StreamRef
TmuProgram::addStream(TuRef tu, StreamDesc desc)
{
    TuDesc &d = tuMutable(tu);
    d.streams.push_back(std::move(desc));
    return {tu, static_cast<int>(d.streams.size()) - 1};
}

StreamRef
TmuProgram::addMemStream(TuRef tu, const void *base, ElemType elem,
                         StreamRef index, std::string name,
                         StreamRef index2)
{
    StreamDesc s;
    s.kind = StreamKind::Mem;
    s.elem = elem;
    s.base = sim::canonBase(base);
    s.parent = index.valid() ? index : iteStream(tu);
    s.parent2 = index2;
    s.name = std::move(name);
    return addStream(tu, std::move(s));
}

StreamRef
TmuProgram::addLinStream(TuRef tu, double a, double b, StreamRef index,
                         std::string name, StreamRef index2)
{
    StreamDesc s;
    s.kind = StreamKind::Lin;
    s.elem = ElemType::I64;
    s.linA = a;
    s.linB = b;
    s.parent = index.valid() ? index : iteStream(tu);
    s.parent2 = index2;
    s.name = std::move(name);
    return addStream(tu, std::move(s));
}

StreamRef
TmuProgram::addMapStream(TuRef tu, std::vector<std::int64_t> map,
                         StreamRef index, std::string name)
{
    TMU_ASSERT(!map.empty() && map.size() <= 16,
               "map streams hold at most 16 entries");
    StreamDesc s;
    s.kind = StreamKind::Map;
    s.elem = ElemType::I64;
    s.map = std::move(map);
    s.parent = index.valid() ? index : iteStream(tu);
    s.name = std::move(name);
    return addStream(tu, std::move(s));
}

StreamRef
TmuProgram::addLdrStream(TuRef tu, const void *base, StreamRef index,
                         std::string name, StreamRef index2)
{
    StreamDesc s;
    s.kind = StreamKind::Ldr;
    s.elem = ElemType::I64;
    s.base = sim::canonBase(base);
    s.parent = index.valid() ? index : iteStream(tu);
    s.parent2 = index2;
    s.name = std::move(name);
    return addStream(tu, std::move(s));
}

StreamRef
TmuProgram::addFwdStream(TuRef tu, StreamRef source, std::string name)
{
    TMU_ASSERT(source.valid());
    TMU_ASSERT(source.tu.layer < tu.layer,
               "fwd must forward from a leftward TU");
    StreamDesc s;
    s.kind = StreamKind::Fwd;
    s.elem = stream(source).elem;
    s.fwdSource = source;
    s.name = std::move(name);
    return addStream(tu, std::move(s));
}

void
TmuProgram::setMergeKey(TuRef tu, StreamRef key)
{
    TMU_ASSERT(key.tu == tu, "merge key must belong to the same TU");
    tuMutable(tu).mergeKey = key;
}

void
TmuProgram::setExpectedFiberLen(TuRef tu, Index len)
{
    TMU_ASSERT(len > 0);
    tuMutable(tu).expectedFiberLen = len;
}

void
TmuProgram::setDenseBounds(TuRef ref, Index beg, Index end)
{
    TuDesc &d = tuMutable(ref);
    TMU_ASSERT(d.kind == TraversalKind::Dense,
               "setDenseBounds on a non-dense TU");
    d.beg = beg;
    d.end = end;
}

int
TmuProgram::addVecStream(int layer, std::vector<StreamRef> perLane,
                         ElemType elem, std::string name)
{
    TMU_ASSERT(layer >= 0 && layer < numLayers());
    TMU_ASSERT(!perLane.empty());
    for (const StreamRef &s : perLane)
        TMU_ASSERT(s.tu.layer == layer,
                   "group streams marshal same-layer TUs");
    GroupStreamDesc g;
    g.perLane = std::move(perLane);
    g.elem = elem;
    g.name = std::move(name);
    auto &gs = layers_[static_cast<size_t>(layer)].groupStreams;
    gs.push_back(std::move(g));
    return static_cast<int>(gs.size()) - 1;
}

void
TmuProgram::addCallback(int layer, CallbackEvent event, int callbackId,
                        std::vector<int> operands)
{
    TMU_ASSERT(layer >= 0 && layer < numLayers());
    const auto &gs = layers_[static_cast<size_t>(layer)].groupStreams;
    for (int o : operands) {
        TMU_ASSERT(o == kMskOperand ||
                       (o >= 0 && o < static_cast<int>(gs.size())),
                   "callback operand %d not registered", o);
    }
    CallbackDesc cb;
    cb.event = event;
    cb.callbackId = callbackId;
    cb.operands = std::move(operands);
    layers_[static_cast<size_t>(layer)].callbacks.push_back(std::move(cb));
}

int
TmuProgram::maxLanes() const
{
    int lanes = 0;
    for (const auto &l : layers_)
        lanes = std::max(lanes, l.lanes());
    return lanes;
}

const TuDesc &
TmuProgram::tu(TuRef ref) const
{
    TMU_ASSERT(ref.valid());
    const auto &tus = layers_.at(static_cast<size_t>(ref.layer)).tus;
    TMU_ASSERT(ref.lane < static_cast<int>(tus.size()),
               "no TU at (%d,%d)", ref.layer, ref.lane);
    return tus[static_cast<size_t>(ref.lane)];
}

TuDesc &
TmuProgram::tuMutable(TuRef ref)
{
    return const_cast<TuDesc &>(tu(ref));
}

const StreamDesc &
TmuProgram::stream(StreamRef ref) const
{
    const TuDesc &t = tu(ref.tu);
    TMU_ASSERT(ref.slot >= 0 &&
               ref.slot < static_cast<int>(t.streams.size()));
    return t.streams[static_cast<size_t>(ref.slot)];
}

void
TmuProgram::validate(int engineLanes) const
{
    TMU_ASSERT(numLayers() > 0, "empty TMU program");
    for (int l = 0; l < numLayers(); ++l) {
        const LayerDesc &layer = layers_[static_cast<size_t>(l)];
        if (layer.lanes() > engineLanes) {
            TMU_FATAL("layer %d uses %d lanes but the engine has %d", l,
                      layer.lanes(), engineLanes);
        }
        if (layer.lanes() == 0)
            TMU_FATAL("layer %d has no TUs", l);
        for (int r = 0; r < layer.lanes(); ++r) {
            const TuDesc &t = layer.tus[static_cast<size_t>(r)];
            if (t.streams.empty())
                TMU_FATAL("TU (%d,%d) was never configured", l, r);
            if (t.kind != TraversalKind::Dense) {
                if (!t.begStream.valid() ||
                    t.begStream.tu.layer != l - 1) {
                    TMU_FATAL("TU (%d,%d): bounds must come from "
                              "layer %d", l, r, l - 1);
                }
                if (t.kind == TraversalKind::Range &&
                    (!t.endStream.valid() ||
                     t.endStream.tu.layer != l - 1)) {
                    TMU_FATAL("TU (%d,%d): end bound must come from "
                              "layer %d", l, r, l - 1);
                }
            }
            if (t.stride == 0)
                TMU_FATAL("TU (%d,%d): zero stride", l, r);
            for (const StreamDesc &s : t.streams) {
                if (s.kind == StreamKind::Mem || s.kind == StreamKind::Lin ||
                    s.kind == StreamKind::Map || s.kind == StreamKind::Ldr) {
                    // Index parents live in the same TU or to the left.
                    if (s.parent.tu.layer > l)
                        TMU_FATAL("stream parent is rightward of its TU");
                }
            }
        }
        if ((layer.mode == GroupMode::DisjMrg ||
             layer.mode == GroupMode::ConjMrg) &&
            layer.lanes() < 2) {
            TMU_FATAL("layer %d: merging needs at least 2 lanes", l);
        }
    }
}

std::string
TmuProgram::describe() const
{
    std::string out;
    for (int l = 0; l < numLayers(); ++l) {
        const LayerDesc &layer = layers_[static_cast<size_t>(l)];
        out += detail::format("L%d[%s x%d]:", l,
                              groupModeName(layer.mode), layer.lanes());
        const TuDesc &t = layer.tus[0];
        out += detail::format(" %s", traversalKindName(t.kind));
        for (size_t s = 1; s < t.streams.size(); ++s) {
            out += detail::format(" %s%s",
                                  streamKindName(t.streams[s].kind),
                                  t.streams[s].name.empty()
                                      ? ""
                                      : ("(" + t.streams[s].name + ")")
                                            .c_str());
        }
        for (const CallbackDesc &cb : layer.callbacks) {
            out += detail::format(" %s->cb%d",
                                  callbackEventName(cb.event),
                                  cb.callbackId);
        }
        if (l + 1 < numLayers())
            out += " | ";
    }
    return out;
}

std::string
TmuProgram::summary() const
{
    std::set<std::string> traversals, streams, modes;
    std::map<std::string, int> callbacks;
    for (int l = 0; l < numLayers(); ++l) {
        const LayerDesc &layer = layers_[static_cast<size_t>(l)];
        modes.insert(groupModeName(layer.mode));
        for (const TuDesc &tu : layer.tus) {
            if (tu.streams.empty())
                continue;
            traversals.insert(traversalKindName(tu.kind));
            for (const StreamDesc &s : tu.streams) {
                if (s.kind != StreamKind::Ite)
                    streams.insert(streamKindName(s.kind));
            }
        }
        for (const CallbackDesc &cb : layer.callbacks) {
            ++callbacks[callbackEventName(cb.event)];
            for (int o : cb.operands) {
                if (o == kMskOperand)
                    streams.insert("msk");
            }
        }
    }
    auto join = [](const std::set<std::string> &xs) {
        std::string out;
        for (const auto &x : xs)
            out += (out.empty() ? "" : ",") + x;
        return out;
    };
    std::string cbs;
    for (const auto &[ev, n] : callbacks)
        cbs += (cbs.empty() ? "" : ",") + ev + "x" + std::to_string(n);
    return join(traversals) + " | " + join(streams) + " | " +
           join(modes) + " | " + cbs;
}

} // namespace tmu::engine
