#include "area.hpp"

#include "common/log.hpp"

namespace tmu::engine {

namespace {

// Calibration anchors from the paper's 22nm synthesis (Sec. 6).
constexpr double kPaperLaneMm2 = 0.0080;  // 2 KiB storage per lane
constexpr double kPaperTotalMm2 = 0.0704; // 8-lane TMU
constexpr double kPaperPctOfN1 = 1.52;    // percent of an N1 core
constexpr std::size_t kPaperLaneBytes = 2048;
constexpr int kPaperLanes = 8;

// Split a lane into fixed logic and SRAM that scales with storage.
// Dense SRAM dominates: assume 60% of the lane is storage at 2 KiB.
constexpr double kLaneLogicMm2 = kPaperLaneMm2 * 0.4;
constexpr double kLaneSramMm2PerKib =
    kPaperLaneMm2 * 0.6 / (kPaperLaneBytes / 1024.0);

// Shared logic (mergers, arbiter, outQ writer) from the residual.
constexpr double kSharedBaseMm2 =
    kPaperTotalMm2 - kPaperLanes * kPaperLaneMm2;

// Implied N1 core area at this node.
constexpr double kN1CoreMm2 = kPaperTotalMm2 / (kPaperPctOfN1 / 100.0);

} // namespace

AreaEstimate
estimateArea(int lanes, std::size_t perLaneBytes)
{
    TMU_ASSERT(lanes > 0 && perLaneBytes > 0);
    AreaEstimate a;
    a.laneMm2 = kLaneLogicMm2 +
                kLaneSramMm2PerKib *
                    (static_cast<double>(perLaneBytes) / 1024.0);
    // Merger/arbiter complexity grows mildly with the lane count.
    a.sharedMm2 =
        kSharedBaseMm2 * (0.5 + 0.5 * static_cast<double>(lanes) /
                                     static_cast<double>(kPaperLanes));
    a.totalMm2 = a.sharedMm2 + static_cast<double>(lanes) * a.laneMm2;
    a.pctOfN1Core = 100.0 * a.totalMm2 / kN1CoreMm2;
    return a;
}

std::string
describeArea(const AreaEstimate &a)
{
    return detail::format(
        "lane %.4f mm2, shared %.4f mm2, total %.4f mm2 (%.2f%% of an "
        "N1 core)",
        a.laneMm2, a.sharedMm2, a.totalMm2, a.pctOfN1Core);
}

} // namespace tmu::engine
