/**
 * @file
 * Analytical TU queue-sizing model (paper Sec. 5.5).
 *
 * All TUs of a lane share the lane's storage; queues are carved out at
 * configuration time proportionally to how much data each layer loads,
 * estimated from the expected nnz-per-fiber hints. Rightmost layers
 * traverse more elements and get deeper queues.
 */

#pragma once

#include <vector>

#include "tmu/program.hpp"

namespace tmu::engine {

/** Queue depths (elements) per layer, identical across a layer's TUs. */
struct QueuePlan
{
    std::vector<int> depthPerLayer;

    int
    depth(int layer) const
    {
        return depthPerLayer.at(static_cast<size_t>(layer));
    }
};

/**
 * Allocate @p perLaneBytes of stream storage across a program's layers.
 *
 * Each element costs 8 bytes per stream; a layer's weight is the
 * product of expected fiber lengths of all layers up to and including
 * it (the volume a fully-unrolled traversal would load), normalized.
 * Every queue gets at least @p minDepth entries.
 */
QueuePlan planQueues(const TmuProgram &program,
                     std::size_t perLaneBytes, int minDepth = 2);

} // namespace tmu::engine
