/**
 * @file
 * Core-side outQ consumption (paper Sec. 4.3): a TraceSource that pops
 * callback records from the engine's sealed chunks and expands each
 * into the micro-ops the host core executes — operand vector loads
 * (which hit the L2, where the engine installed the chunk) followed by
 * the workload-registered compute micro-ops. The registered handler
 * also performs the *real* computation, so the TMU path produces
 * checked results.
 */

#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "common/log.hpp"
#include "sim/tracesource.hpp"
#include "tmu/engine.hpp"

namespace tmu::engine {

/**
 * Per-callback compute model and implementation.
 * Receives the record; performs the real computation (side effects on
 * the workload's output buffers) and appends the compute micro-ops the
 * core would execute (FMAs, reduces, result stores).
 */
using CallbackHandler =
    std::function<void(const OutqRecord &, std::vector<sim::MicroOp> &)>;

/** TraceSource adapter between a TmuEngine and its host core. */
class OutqSource : public sim::TraceSource
{
  public:
    explicit OutqSource(TmuEngine &engine) : engine_(engine) {}

    /**
     * Register the HBT callback body for @p callbackId. Each id may be
     * bound exactly once: two registrations aliasing the same id would
     * silently dispatch every record to whichever handler won, so a
     * collision is a configuration bug and panics immediately.
     */
    void
    setHandler(int callbackId, CallbackHandler handler)
    {
        const bool fresh =
            handlers_.emplace(callbackId, std::move(handler)).second;
        TMU_ASSERT(fresh, "duplicate callback handler id %d", callbackId);
    }

    bool pullOp(sim::MicroOp &op, Cycle now) override;
    bool done() const override;

    /**
     * Earliest cycle a pull could succeed or have a side effect:
     * buffered micro-ops are available immediately; otherwise the
     * engine's record-availability gate decides (kWakeNever parks the
     * core until the engine seals a chunk).
     */
    Cycle
    nextPullCycle(Cycle now) const override
    {
        if (pendingHead_ < pending_.size())
            return now;
        return engine_.recordAvailableAt(now);
    }

    /** Forward the core's wake port to the engine (seal/finish wakes). */
    void
    bindConsumer(sim::Scheduler &sched, int handle) override
    {
        engine_.setConsumerWake(sched, handle);
    }

    /** Records consumed so far (tests/stats). */
    std::uint64_t recordsConsumed() const { return consumed_; }

    /** Register consumption counters under @p prefix (e.g. "tmu0."). */
    void
    registerStats(stats::StatRegistry &reg,
                  const std::string &prefix) const
    {
        reg.scalar(prefix + "recordsConsumed",
                   "outQ records consumed by the host core",
                   &consumed_);
    }

  private:
    TmuEngine &engine_;
    std::unordered_map<int, CallbackHandler> handlers_;
    std::vector<sim::MicroOp> pending_;
    std::size_t pendingHead_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace tmu::engine
