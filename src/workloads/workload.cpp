#include "workload.hpp"

#include "common/log.hpp"
#include "tmu/outq.hpp"

namespace tmu::workloads {

RunHarness::RunHarness(const RunConfig &cfg)
    : cfg_(cfg), system_(std::make_unique<sim::System>(cfg.system))
{
}

void
RunHarness::addBaselineTrace(int c, sim::Trace trace)
{
    TMU_ASSERT(cfg_.mode == Mode::Baseline);
    traces_.push_back(
        std::make_unique<sim::CoroutineSource>(std::move(trace)));
    system_->attachSource(c, traces_.back().get());
}

engine::OutqSource &
RunHarness::addTmuProgram(int c, const engine::TmuProgram &prog)
{
    TMU_ASSERT(cfg_.mode == Mode::Tmu);
    engines_.push_back(std::make_unique<engine::TmuEngine>(
        c, cfg_.tmu, system_->mem(), prog));
    system_->addDevice(engines_.back().get());
    outqs_.push_back(
        std::make_unique<engine::OutqSource>(*engines_.back()));
    system_->attachSource(c, outqs_.back().get());
    return *outqs_.back();
}

RunResult
RunHarness::finish()
{
    RunResult res;
    res.sim = system_->run();
    double rwSum = 0.0;
    int rwCount = 0;
    for (const auto &engine : engines_) {
        const engine::EngineStats &s = engine->stats();
        res.tmuRequests += s.requestsIssued;
        res.tmuElements += s.elementsPushed;
        if (s.rwChunks > 0) {
            rwSum += s.readToWriteRatio();
            ++rwCount;
        }
    }
    if (rwCount > 0)
        res.rwRatio = rwSum / rwCount;
    return res;
}

} // namespace tmu::workloads
