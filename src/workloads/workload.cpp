#include "workload.hpp"

#include "common/log.hpp"
#include "sim/fault.hpp"
#include "sim/statsdump.hpp"
#include "tmu/outq.hpp"

namespace tmu::workloads {

namespace {

/** Sum one live CoreStats member over every core. */
std::function<double()>
coreSum(sim::System *sys, Cycle sim::CoreStats::*member)
{
    return [sys, member] {
        Cycle n = 0;
        for (int c = 0; c < sys->numCores(); ++c)
            n += sys->core(c).stats().*member;
        return static_cast<double>(n);
    };
}

/** The standard core/memory column set of every telemetry stream. */
void
addSystemColumns(sim::TelemetrySampler &t, sim::System *sys)
{
    using CS = sim::CoreStats;
    t.addColumn("cores.cycles", "cycles", coreSum(sys, &CS::cycles));
    t.addColumn("cores.retiredOps", "ops", [sys] {
        std::uint64_t n = 0;
        for (int c = 0; c < sys->numCores(); ++c)
            n += sys->core(c).stats().retiredOps;
        return static_cast<double>(n);
    });
    t.addColumn("cores.attr.retiring", "cycles",
                coreSum(sys, &CS::attrRetiring));
    t.addColumn("cores.attr.frontendBound", "cycles",
                coreSum(sys, &CS::attrFrontendBound));
    t.addColumn("cores.attr.backendMemL1", "cycles",
                coreSum(sys, &CS::attrBackendMemL1));
    t.addColumn("cores.attr.backendMemL2", "cycles",
                coreSum(sys, &CS::attrBackendMemL2));
    t.addColumn("cores.attr.backendMemLlc", "cycles",
                coreSum(sys, &CS::attrBackendMemLlc));
    t.addColumn("cores.attr.backendMemDram", "cycles",
                coreSum(sys, &CS::attrBackendMemDram));
    t.addColumn("cores.attr.backendExec", "cycles",
                coreSum(sys, &CS::attrBackendExec));
    t.addColumn("cores.attr.outqEmpty", "cycles",
                coreSum(sys, &CS::attrOutqEmpty));
    t.addColumn("cores.supply.occupied", "cycles",
                coreSum(sys, &CS::supplyOccupied));
    t.addColumn("cores.supply.starved", "cycles",
                coreSum(sys, &CS::supplyStarved));
    t.addColumn("cores.supply.backpressured", "cycles",
                coreSum(sys, &CS::supplyBackpressured));
    t.addColumn("cores.supply.drained", "cycles",
                coreSum(sys, &CS::supplyDrained));
    t.addColumn("dram.readBytes", "bytes", [sys] {
        return static_cast<double>(sys->mem().dramStats().readBytes);
    });
    t.addColumn("dram.writeBytes", "bytes", [sys] {
        return static_cast<double>(sys->mem().dramStats().writeBytes);
    });
}

} // namespace

void
mergeCounterSnapshots(stats::StatSnapshot &into,
                      const stats::StatSnapshot &phase)
{
    for (const stats::SnapshotEntry &e : phase.entries) {
        if (e.kind != stats::StatKind::U64)
            continue;
        bool merged = false;
        for (stats::SnapshotEntry &have : into.entries) {
            if (have.name == e.name) {
                have.u += e.u;
                merged = true;
                break;
            }
        }
        if (!merged)
            into.entries.push_back(e);
    }
}

RunHarness::RunHarness(const RunConfig &cfg)
    : cfg_(cfg), system_(std::make_unique<sim::System>(cfg.system))
{
    if (cfg_.trace != nullptr)
        system_->setTracer(cfg_.trace, cfg_.tracePid);
    system_->mem().setFaultInjector(cfg_.faults);
    if (cfg_.telemetry != nullptr) {
        addSystemColumns(*cfg_.telemetry, system_.get());
        if (cfg_.trace != nullptr)
            cfg_.telemetry->setTracer(cfg_.trace, cfg_.tracePid);
        system_->setTelemetry(cfg_.telemetry);
    }
}

void
RunHarness::addBaselineTrace(int c, sim::Trace trace)
{
    TMU_ASSERT(cfg_.mode == Mode::Baseline);
    traces_.push_back(
        std::make_unique<sim::CoroutineSource>(std::move(trace)));
    system_->attachSource(c, traces_.back().get());
}

engine::OutqSource &
RunHarness::addTmuProgram(int c, const engine::TmuProgram &prog)
{
    TMU_ASSERT(cfg_.mode == Mode::Tmu);
    engines_.push_back(std::make_unique<engine::TmuEngine>(
        c, cfg_.tmu, system_->mem(), prog));
    if (cfg_.trace != nullptr)
        engines_.back()->setTracer(cfg_.trace, cfg_.tracePid);
    engines_.back()->setFaultInjector(cfg_.faults);
    if (cfg_.telemetry != nullptr) {
        const engine::TmuEngine *eng = engines_.back().get();
        const std::string p = "tmu" + std::to_string(c) + ".";
        cfg_.telemetry->addColumn(p + "outqOccupancy", "bytes", [eng] {
            return static_cast<double>(eng->outqOccupancyBytes());
        });
        cfg_.telemetry->addColumn(p + "busyCycles", "cycles", [eng] {
            return static_cast<double>(eng->stats().busyCycles);
        });
        using ES = engine::EngineStats;
        const std::pair<const char *, Cycle ES::*> buckets[] = {
            {"attr.fill", &ES::fillCycles},
            {"attr.traverse", &ES::traverseCycles},
            {"attr.drain", &ES::drainCycles},
            {"attr.memsysStall", &ES::memsysStallCycles},
            {"attr.backpressure", &ES::backpressureCycles},
        };
        for (const auto &[name, member] : buckets) {
            cfg_.telemetry->addColumn(
                p + name, "cycles", [eng, member = member] {
                    return static_cast<double>(eng->stats().*member);
                });
        }
    }
    system_->addDevice(engines_.back().get());
    outqs_.push_back(
        std::make_unique<engine::OutqSource>(*engines_.back()));
    system_->attachSource(c, outqs_.back().get());
    return *outqs_.back();
}

RunResult
RunHarness::finish()
{
    RunResult res;
    res.sim = system_->run();
    double rwSum = 0.0;
    int rwCount = 0;
    for (const auto &engine : engines_) {
        const engine::EngineStats &s = engine->stats();
        res.tmuRequests += s.requestsIssued;
        res.tmuElements += s.elementsPushed;
        if (s.rwChunks > 0) {
            rwSum += s.readToWriteRatio();
            ++rwCount;
        }
    }
    if (rwCount > 0)
        res.rwRatio = rwSum / rwCount;

    // Snapshot the full registry while the harness models are alive so
    // callers can export stats after this object is destroyed.
    stats::StatRegistry reg;
    sim::buildSimRegistry(reg, res.sim, system_->mem(),
                          /*extended=*/true);
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        const std::string p =
            "tmu" + std::to_string(engines_[i]->coreId()) + ".";
        engines_[i]->registerStats(reg, p, /*extended=*/true);
        outqs_[i]->registerStats(reg, p);
    }
    if (cfg_.faults != nullptr)
        cfg_.faults->registerStats(reg, "faults.");
    if (!partition_.bounds.empty()) {
        // Load-balance family of the run's work distribution: how much
        // the chosen --partition strategy actually evened out the work.
        const Partition &p = partition_;
        std::uint64_t nnz = 0, rows = 0;
        for (int c = 0; c < p.cores; ++c) {
            nnz += p.nnzAssigned[static_cast<size_t>(c)];
            rows += p.rowsAssigned[static_cast<size_t>(c)];
        }
        reg.scalarU64("cores.balance.nnzAssigned",
                      "work units distributed over the cores",
                      [nnz] { return nnz; });
        reg.scalarU64("cores.balance.rowsAssigned",
                      "outer iterations distributed over the cores",
                      [rows] { return rows; });
        const double ratio = p.imbalanceRatio();
        reg.formula("cores.balance.imbalanceRatio",
                    "max over mean per-core assigned work",
                    [ratio] { return ratio; });
        for (int c = 0; c < p.cores; ++c) {
            const std::string cp =
                "core" + std::to_string(c) + ".balance.";
            const std::uint64_t cn =
                p.nnzAssigned[static_cast<size_t>(c)];
            const std::uint64_t cr =
                p.rowsAssigned[static_cast<size_t>(c)];
            reg.scalarU64(cp + "nnzAssigned",
                          "work units assigned to this core",
                          [cn] { return cn; });
            reg.scalarU64(cp + "rowsAssigned",
                          "outer iterations assigned to this core",
                          [cr] { return cr; });
        }
    }
    res.stats = reg.snapshot();
    return res;
}

} // namespace tmu::workloads
