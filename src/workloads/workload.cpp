#include "workload.hpp"

#include "common/log.hpp"
#include "sim/fault.hpp"
#include "sim/statsdump.hpp"
#include "tmu/outq.hpp"

namespace tmu::workloads {

RunHarness::RunHarness(const RunConfig &cfg)
    : cfg_(cfg), system_(std::make_unique<sim::System>(cfg.system))
{
    if (cfg_.trace != nullptr)
        system_->setTracer(cfg_.trace, cfg_.tracePid);
    system_->mem().setFaultInjector(cfg_.faults);
}

void
RunHarness::addBaselineTrace(int c, sim::Trace trace)
{
    TMU_ASSERT(cfg_.mode == Mode::Baseline);
    traces_.push_back(
        std::make_unique<sim::CoroutineSource>(std::move(trace)));
    system_->attachSource(c, traces_.back().get());
}

engine::OutqSource &
RunHarness::addTmuProgram(int c, const engine::TmuProgram &prog)
{
    TMU_ASSERT(cfg_.mode == Mode::Tmu);
    engines_.push_back(std::make_unique<engine::TmuEngine>(
        c, cfg_.tmu, system_->mem(), prog));
    if (cfg_.trace != nullptr)
        engines_.back()->setTracer(cfg_.trace, cfg_.tracePid);
    engines_.back()->setFaultInjector(cfg_.faults);
    system_->addDevice(engines_.back().get());
    outqs_.push_back(
        std::make_unique<engine::OutqSource>(*engines_.back()));
    system_->attachSource(c, outqs_.back().get());
    return *outqs_.back();
}

RunResult
RunHarness::finish()
{
    RunResult res;
    res.sim = system_->run();
    double rwSum = 0.0;
    int rwCount = 0;
    for (const auto &engine : engines_) {
        const engine::EngineStats &s = engine->stats();
        res.tmuRequests += s.requestsIssued;
        res.tmuElements += s.elementsPushed;
        if (s.rwChunks > 0) {
            rwSum += s.readToWriteRatio();
            ++rwCount;
        }
    }
    if (rwCount > 0)
        res.rwRatio = rwSum / rwCount;

    // Snapshot the full registry while the harness models are alive so
    // callers can export stats after this object is destroyed.
    stats::StatRegistry reg;
    sim::buildSimRegistry(reg, res.sim, system_->mem(),
                          /*extended=*/true);
    for (std::size_t i = 0; i < engines_.size(); ++i) {
        const std::string p =
            "tmu" + std::to_string(engines_[i]->coreId()) + ".";
        engines_[i]->registerStats(reg, p, /*extended=*/true);
        outqs_[i]->registerStats(reg, p);
    }
    if (cfg_.faults != nullptr)
        cfg_.faults->registerStats(reg, "faults.");
    res.stats = reg.snapshot();
    return res;
}

} // namespace tmu::workloads
