/**
 * @file
 * Merge-intensive workload bindings: SpKAdd (k=8, DCSR) and SpAdd
 * (the Fig. 3 merge proxy).
 */

#pragma once

#include "tensor/csr.hpp"
#include "tensor/dcsr.hpp"
#include "workloads/workload.hpp"

namespace tmu::workloads {

/** SpKAdd: sum of 8 hypersparse DCSR matrices (paper Sec. 6). */
class SpkaddWorkload : public Workload
{
  public:
    std::string name() const override { return "SpKAdd"; }
    Class workloadClass() const override
    {
        return Class::MergeIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

    static constexpr int kInputs = 8; //!< paper: k = 8

  private:
    std::vector<tensor::DcsrMatrix> parts_;
    tensor::CsrMatrix ref_;
};

/** SpAdd: Z = A + B, CSR; TMU maps it as a 2-lane SpKAdd. */
class SpaddWorkload : public Workload
{
  public:
    std::string name() const override { return "SpAdd"; }
    Class workloadClass() const override
    {
        return Class::MergeIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsrMatrix a_;
    tensor::CsrMatrix b_;
    std::vector<tensor::DcsrMatrix> asDcsr_; //!< TMU path operands
    tensor::CsrMatrix ref_;
};

} // namespace tmu::workloads
