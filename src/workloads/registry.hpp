/**
 * @file
 * Workload registry: the evaluated workload set by name (paper Sec. 6).
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hpp"

namespace tmu::workloads {

/**
 * Instantiate a workload by name; UnknownName error (listing the known
 * names) on a lookup miss, so drivers can skip and continue.
 */
Expected<std::unique_ptr<Workload>>
tryMakeWorkload(const std::string &name);

/** Instantiate a workload by name; fatals on unknown names. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** All evaluated workload names, Fig. 10 order. */
std::vector<std::string> linearAlgebraWorkloads(); //!< matrix inputs
std::vector<std::string> tensorAlgebraWorkloads(); //!< tensor inputs
std::vector<std::string> allWorkloads();

} // namespace tmu::workloads
