#include "partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace tmu::workloads {

const char *
partitionKindName(PartitionKind kind)
{
    switch (kind) {
    case PartitionKind::Rows:
        return "rows";
    case PartitionKind::NnzBalanced:
        return "nnz";
    case PartitionKind::Tiles2D:
        return "tiles2d";
    }
    return "?";
}

std::vector<PartitionKind>
partitionKinds()
{
    return {PartitionKind::Rows, PartitionKind::NnzBalanced,
            PartitionKind::Tiles2D};
}

Expected<PartitionKind>
parsePartitionKind(const std::string &name)
{
    for (const PartitionKind k : partitionKinds()) {
        if (name == partitionKindName(k))
            return k;
    }
    return TMU_ERR(Errc::UnknownName,
                   "unknown partition strategy '%s' (known: rows, "
                   "nnz, tiles2d)",
                   name.c_str());
}

double
Partition::imbalanceRatio() const
{
    std::uint64_t sum = 0, peak = 0;
    for (const std::uint64_t n : nnzAssigned) {
        sum += n;
        peak = std::max(peak, n);
    }
    if (sum == 0 || nnzAssigned.empty())
        return 1.0;
    const double mean = static_cast<double>(sum) /
                        static_cast<double>(nnzAssigned.size());
    return static_cast<double>(peak) / mean;
}

namespace {

/** The historical equal-span split: bounds of the old partition(). */
void
rowBounds(Index beg, Index end, int parts, std::vector<Index> &out)
{
    const Index total = end - beg;
    const Index chunk = (total + parts - 1) / parts;
    for (int p = 1; p < parts; ++p)
        out.push_back(beg + std::min<Index>(total, chunk * p));
}

/** Can rows [beg, end) fit in @p parts contiguous bins of cap @p c? */
bool
fitsUnderCap(Index beg, Index end, const Index *prefix, int parts,
             Index c)
{
    int bins = 1;
    Index load = 0;
    for (Index r = beg; r < end; ++r) {
        const Index len = prefix[r + 1] - prefix[r];
        if (load + len > c) {
            if (++bins > parts)
                return false;
            load = len;
        } else {
            load += len;
        }
    }
    return true;
}

/**
 * Nnz-balanced split of rows [beg, end): the optimal contiguous
 * min-max partition. Binary search on the per-core cap (greedy
 * first-fit feasibility is monotone in the cap), then emit the greedy
 * boundaries for the smallest feasible cap — no core carries more
 * than the provably minimal peak. A quota split at fixed p/parts
 * targets can overshoot by a whole fat row on Zipf-skewed inputs;
 * this one cannot.
 */
void
nnzBounds(Index beg, Index end, const Index *prefix, int parts,
          std::vector<Index> &out)
{
    const Index spanNnz = prefix[end] - prefix[beg];
    if (spanNnz == 0) { // all-empty span: spread the rows evenly
        rowBounds(beg, end, parts, out);
        return;
    }
    Index fat = 0;
    for (Index r = beg; r < end; ++r)
        fat = std::max(fat, prefix[r + 1] - prefix[r]);
    Index lo = std::max(fat, (spanNnz + parts - 1) / parts);
    Index hi = spanNnz;
    while (lo < hi) {
        const Index mid = lo + (hi - lo) / 2;
        if (fitsUnderCap(beg, end, prefix, parts, mid))
            hi = mid;
        else
            lo = mid + 1;
    }
    // Greedy emission under the optimal cap: each bin takes rows as
    // long as it stays under the cap. Trailing bins may come out
    // empty (repeated `end` bounds) when the span packs tighter than
    // parts bins; peak load — the completion-time metric — is still
    // the optimum.
    Index load = 0;
    int emitted = 0;
    for (Index r = beg; r < end && emitted < parts - 1; ++r) {
        const Index len = prefix[r + 1] - prefix[r];
        if (load + len > lo) {
            out.push_back(r);
            ++emitted;
            load = len;
        } else {
            load += len;
        }
    }
    for (; emitted < parts - 1; ++emitted)
        out.push_back(end);
}

/** Divisor of @p n nearest sqrt(n); ties pick the smaller factor. */
int
nearestDivisor(int n)
{
    const double root = std::sqrt(static_cast<double>(n));
    int best = 1;
    for (int d = 1; d <= n; ++d) {
        if (n % d != 0)
            continue;
        if (std::abs(d - root) < std::abs(best - root))
            best = d;
    }
    return best;
}

} // namespace

Partition
makePartition(PartitionKind kind, Index total, const Index *prefix,
              int cores)
{
    TMU_ASSERT(cores >= 1 && total >= 0);
    Partition part;
    part.kind = kind;
    part.cores = cores;
    part.total = total;
    part.bounds.reserve(static_cast<size_t>(cores) + 1);
    part.bounds.push_back(0);

    const bool weighted = prefix != nullptr &&
                          kind != PartitionKind::Rows;
    switch (kind) {
    case PartitionKind::Rows:
        rowBounds(0, total, cores, part.bounds);
        break;
    case PartitionKind::NnzBalanced:
        if (weighted)
            nnzBounds(0, total, prefix, cores, part.bounds);
        else
            rowBounds(0, total, cores, part.bounds);
        break;
    case PartitionKind::Tiles2D: {
        // Pr equal-row bands x Pc nnz-subsplits, Pr*Pc == cores.
        const int pr = nearestDivisor(cores);
        const int pc = cores / pr;
        std::vector<Index> bands{0};
        rowBounds(0, total, pr, bands);
        bands.push_back(total);
        for (int b = 0; b < pr; ++b) {
            if (weighted) {
                nnzBounds(bands[static_cast<size_t>(b)],
                          bands[static_cast<size_t>(b) + 1], prefix,
                          pc, part.bounds);
            } else {
                rowBounds(bands[static_cast<size_t>(b)],
                          bands[static_cast<size_t>(b) + 1], pc,
                          part.bounds);
            }
            if (b + 1 < pr)
                part.bounds.push_back(
                    bands[static_cast<size_t>(b) + 1]);
        }
        break;
    }
    }
    part.bounds.push_back(total);
    TMU_ASSERT(part.bounds.size() ==
               static_cast<size_t>(cores) + 1);

    part.rowsAssigned.resize(static_cast<size_t>(cores));
    part.nnzAssigned.resize(static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c) {
        const auto [b, e] = part.range(c);
        part.rowsAssigned[static_cast<size_t>(c)] =
            static_cast<std::uint64_t>(e - b);
        part.nnzAssigned[static_cast<size_t>(c)] =
            prefix != nullptr
                ? static_cast<std::uint64_t>(prefix[e] - prefix[b])
                : static_cast<std::uint64_t>(e - b);
    }
    return part;
}

} // namespace tmu::workloads
