/**
 * @file
 * The shared work-distribution layer: every registry workload splits
 * its iteration space over the simulated cores through one of these
 * strategies instead of a hand-rolled per-file partition() copy. A
 * strategy produces one contiguous [begin, end) span per core — the
 * shape the einsum frontend's CompileOptions{beg, end} slicing (and
 * the traced baselines) can consume directly.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace tmu::workloads {

/** Work-distribution strategy over a workload's outer dimension. */
enum class PartitionKind {
    /**
     * Equal index ranges: ceil(total/cores) units per core. The
     * historical default — reproduces the old inline partition()
     * bounds exactly, so default runs stay cycle-identical.
     */
    Rows,
    /**
     * Nnz-balanced contiguous spans: the optimal min-max partition
     * of the row-pointer prefix sums (binary search on the per-core
     * cap, greedy feasibility), so no core's nnz load exceeds the
     * provably minimal peak. Falls back to Rows when the outer
     * dimension has no prefix structure (dense loops, COO nnz spans
     * that are already element-balanced).
     */
    NnzBalanced,
    /**
     * Hierarchical 2D tiling: Pr row bands x Pc subsplits with
     * Pr*Pc == cores and Pr the divisor nearest sqrt(cores). Bands
     * are equal-rows; each band is nnz-split among its Pc cores.
     * Still one contiguous row span per core — the frontend cannot
     * slice columns (see docs/SCALING.md) — but localizes each
     * band's working set to a core cluster.
     */
    Tiles2D,
};

/** CLI/JSON name of a strategy ("rows", "nnz", "tiles2d"). */
const char *partitionKindName(PartitionKind kind);

/** All strategies, in stable sweep order. */
std::vector<PartitionKind> partitionKinds();

/** Parse a --partition value; UnknownName lists the valid set. */
Expected<PartitionKind> parsePartitionKind(const std::string &name);

/**
 * One run's work distribution: cores+1 monotone bounds over
 * [0, total], plus the per-core load actually assigned (for the
 * cores.balance.* stats).
 */
struct Partition
{
    PartitionKind kind = PartitionKind::Rows;
    int cores = 1;
    Index total = 0;
    /** bounds[c] .. bounds[c+1] is core c's span; size cores+1. */
    std::vector<Index> bounds;
    /** Outer units (rows) assigned per core; size cores. */
    std::vector<std::uint64_t> rowsAssigned;
    /**
     * Work units assigned per core: prefix-weighted (nnz) when the
     * strategy saw a prefix array, outer units otherwise.
     */
    std::vector<std::uint64_t> nnzAssigned;

    /** Core @p c's [begin, end) span. */
    std::pair<Index, Index> range(int c) const
    {
        return {bounds[static_cast<size_t>(c)],
                bounds[static_cast<size_t>(c) + 1]};
    }

    /** Max over mean per-core assigned work (1.0 = perfectly even). */
    double imbalanceRatio() const;
};

/**
 * Split [0, total) over @p cores. @p prefix is the row-pointer prefix
 * array of length total+1 (CsrMatrix::ptrs().data()) used by the
 * nnz-weighted strategies; pass nullptr for unweighted loops and any
 * strategy degrades to its Rows fallback. Every unit lands in exactly
 * one span (tests pin this invariant).
 */
Partition makePartition(PartitionKind kind, Index total,
                        const Index *prefix, int cores);

} // namespace tmu::workloads
