/**
 * @file
 * Workload abstraction: one evaluated kernel/application bound to both
 * execution paths of the study —
 *   Baseline: SVE-style traced software on the simulated cores;
 *   Tmu:      per-core TMU engines marshaling into the cores.
 * Every run checks its outputs against the reference kernel, so each
 * data point in the benches is a verified computation.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/statreg.hpp"
#include "common/tracewriter.hpp"
#include "sim/config.hpp"
#include "sim/system.hpp"
#include "tmu/engine.hpp"
#include "tmu/outq.hpp"
#include "workloads/partition.hpp"

namespace tmu::workloads {

/** Execution path selector. */
enum class Mode {
    Baseline, //!< traced software kernels on the cores
    Tmu,      //!< per-core TMU engines + callback compute
};

/** One simulation run's knobs. */
struct RunConfig
{
    sim::SystemConfig system = sim::SystemConfig::neoverseN1();
    engine::EngineConfig tmu; //!< engine knobs (Tmu mode)
    Mode mode = Mode::Baseline;
    /**
     * Lanes the TMU *programs* parallelize over. Tied to the SVE width
     * (simdBits/64) in the default evaluation; set to 1 for the
     * Fig. 15 Single-Lane comparator.
     */
    int programLanes = 8;

    /**
     * Work-distribution strategy over the cores (see partition.hpp).
     * Rows reproduces the historical equal-span split exactly.
     */
    PartitionKind partition = PartitionKind::Rows;

    /**
     * Optional timeline tracer (borrowed; must outlive the run). Cores
     * and engines record into it as threads of process @c tracePid.
     */
    stats::TraceWriter *trace = nullptr;
    int tracePid = 1;

    /**
     * Optional fault injector (borrowed; must outlive the run). Wired
     * into the memory system and every TMU engine; its counters are
     * registered under "faults." in the RunResult stats snapshot.
     */
    sim::FaultInjector *faults = nullptr;

    /**
     * Optional interval telemetry sampler (borrowed; must outlive the
     * run). The harness registers the standard column set — per-bucket
     * cycle attribution, retired ops, DRAM traffic, and per-engine
     * outQ occupancy / phase cycles — and System::run clocks it every
     * sampler interval. With @c trace set, samples also land as
     * Perfetto counter tracks.
     */
    sim::TelemetrySampler *telemetry = nullptr;
};

/** One run's outcome. */
struct RunResult
{
    sim::SimResult sim;
    bool verified = false;   //!< outputs matched the reference kernel
    double rwRatio = 0.0;    //!< avg outQ read-to-write ratio (Tmu)
    std::uint64_t tmuRequests = 0;
    std::uint64_t tmuElements = 0;
    /**
     * Detached snapshot of the full (extended) stat registry — sim,
     * memory system and any TMU engines — taken before the harness is
     * destroyed, so callers can export JSON/CSV after the run.
     */
    stats::StatSnapshot stats;
};

/** Base class: prepare inputs once, run either path many times. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name, e.g. "SpMV". */
    virtual std::string name() const = 0;

    /** Workload class for the Fig. 10 grouping. */
    enum class Class { MemoryIntensive, ComputeIntensive,
                       MergeIntensive };
    virtual Class workloadClass() const = 0;

    /**
     * Generate inputs for @p inputId ("M1".."M6" / "T1".."T4") at
     * 1/scaleDiv of the published size and compute the reference
     * outputs used for verification.
     */
    virtual void prepare(const std::string &inputId, Index scaleDiv) = 0;

    /** Execute one simulation run. */
    virtual RunResult run(const RunConfig &cfg) = 0;

    /** Valid input ids for this workload. */
    virtual std::vector<std::string> inputs() const = 0;
};

/**
 * [begin, end) slice of @p total handed to core @p c of @p cores —
 * the historical equal-span split, now a thin shim over the shared
 * PartitionKind::Rows strategy (see partition.hpp). Workloads route
 * through RunConfig::partition; this remains for callers that need a
 * quick unweighted split.
 */
inline std::pair<Index, Index>
partition(Index total, int cores, int c)
{
    const Index chunk = (total + cores - 1) / cores;
    const Index beg = std::min<Index>(total, chunk * c);
    const Index end = std::min<Index>(total, beg + chunk);
    return {beg, end};
}

/**
 * Merge a phase's stat snapshot into a multi-phase aggregate: U64
 * counters sum by name (unseen names append in phase order), F64
 * entries are dropped — they are derived ratios (hit rates, GB/s)
 * that do not aggregate across phases. Keeps the per-unit cycle
 * attribution sum invariant intact for multi-phase workloads like
 * CP-ALS whose RunResult spans several simulations.
 */
void mergeCounterSnapshots(stats::StatSnapshot &into,
                           const stats::StatSnapshot &phase);

/**
 * Shared run plumbing: owns the per-core sources/engines for one
 * simulation and produces the RunResult scaffold.
 */
class RunHarness
{
  public:
    explicit RunHarness(const RunConfig &cfg);

    sim::System &system() { return *system_; }
    int cores() const { return cfg_.system.cores; }
    const RunConfig &config() const { return cfg_; }
    sim::SimdConfig simd() const
    {
        return sim::SimdConfig{cfg_.system.simdBits};
    }

    /**
     * Record the run's work distribution so finish() can register the
     * cores.balance.{nnzAssigned,rowsAssigned,imbalanceRatio} stats
     * (aggregate plus per-core). Optional: runs that never split work
     * (single-phase dense loops) simply skip the stat family.
     */
    void setPartition(const Partition &part) { partition_ = part; }

    /**
     * Build this run's partition from RunConfig::partition and record
     * it for the balance stats in one step.
     */
    Partition makeRunPartition(Index total, const Index *prefix)
    {
        setPartition(makePartition(cfg_.partition, total, prefix,
                                   cfg_.system.cores));
        return partition_;
    }

    /** Attach a baseline trace to core @p c. */
    void addBaselineTrace(int c, sim::Trace trace);

    /** Attach a TMU program + outQ source to core @p c. */
    engine::OutqSource &addTmuProgram(int c,
                                      const engine::TmuProgram &prog);

    /** Run to completion and collect engine-side stats. */
    RunResult finish();

  private:
    RunConfig cfg_;
    Partition partition_; //!< empty bounds until setPartition()
    std::unique_ptr<sim::System> system_;
    std::vector<std::unique_ptr<sim::CoroutineSource>> traces_;
    std::vector<std::unique_ptr<engine::TmuEngine>> engines_;
    std::vector<std::unique_ptr<engine::OutqSource>> outqs_;
};

} // namespace tmu::workloads
