/**
 * @file
 * Workloads opened purely by the einsum frontend: SDDMM, SpMM with a
 * sparse output, and GNN-style SpMM+scatter. No hand-written kernel or
 * plan code backs these — each run() compiles its one-line expression
 * through plan::frontend::compileEinsum and lowers through the shared
 * reference/trace/program passes. Verification is against plain host
 * loops computed in prepare(), independent of the plan machinery.
 */

#pragma once

#include "tensor/csr.hpp"
#include "tensor/dense.hpp"
#include "workloads/workload.hpp"

namespace tmu::workloads {

/** SDDMM: Z(i,j; csr) = A(i,j; csr) * B(i,k; dense) * C(j,k; dense). */
class SddmmWorkload : public Workload
{
  public:
    static constexpr Index kRank = 16;
    static constexpr const char *kEinsum =
        "Z(i,j; csr) = A(i,j; csr) * B(i,k; dense) * C(j,k; dense)";

    std::string name() const override { return "SDDMM"; }
    Class workloadClass() const override
    {
        return Class::ComputeIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsrMatrix a_;
    tensor::DenseMatrix b_, c_;
    std::vector<Value> refVals_; //!< sampled pattern is A's
};

/** SpMM, sparse output: Z(i,j; csr) = A(i,k; csr) * B(k,j; dense). */
class SpmmWorkload : public Workload
{
  public:
    static constexpr Index kCols = 16;
    static constexpr const char *kEinsum =
        "Z(i,j; csr) = A(i,k; csr) * B(k,j; dense)";

    std::string name() const override { return "SpMM"; }
    Class workloadClass() const override
    {
        return Class::ComputeIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsrMatrix a_;
    tensor::DenseMatrix b_;
    tensor::DenseMatrix ref_; //!< dense image; empty A rows stay 0
};

/**
 * GNN-style gather-scatter SpMM:
 * Z(m(i), j) += A(i,k; csr) * B(k,j; dense) with a permutation map m.
 */
class SpmmScatterWorkload : public Workload
{
  public:
    static constexpr Index kCols = 16;
    static constexpr const char *kEinsum =
        "Z(m(i), j) = A(i,k; csr) * B(k,j; dense)";

    std::string name() const override { return "SpMM-SC"; }
    Class workloadClass() const override
    {
        return Class::MemoryIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsrMatrix a_;
    tensor::DenseMatrix b_;
    std::vector<Index> map_;
    tensor::DenseMatrix ref_;
};

} // namespace tmu::workloads
