/**
 * @file
 * Paper Table 4 (kernel -> TMU hardware mapping) as a reusable data
 * structure: the bench binary renders it and a tier-1 golden test pins
 * it byte-for-byte.
 *
 * Migrated kernels source their rows from the declarative plan IR —
 * the algorithm/einsum/format labels come from plan::PlanSpec metadata
 * and the program from plan::lowerProgram — while the not-yet-migrated
 * kernels keep the hand-written programs.hpp builders.
 */

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "tmu/program.hpp"

namespace tmu::workloads {

/** One Table-4 row: an executable program plus its paper labels. */
struct Table4Row
{
    std::string algorithm;
    std::string einsum;
    std::string formats;
    engine::TmuProgram program;
};

/**
 * Builds (and owns the tiny pinned operands of) the fifteen Table-4
 * rows. Construction is deterministic: fixed seeds, fixed shapes, so
 * render() is reproducible byte-for-byte across runs and machines.
 */
class Table4
{
  public:
    Table4();
    ~Table4();

    Table4(const Table4 &) = delete;
    Table4 &operator=(const Table4 &) = delete;

    const std::vector<Table4Row> &rows() const { return rows_; }

    /**
     * The rendered table: every program is summarized via
     * TmuProgram::summary() and executed through the functional
     * interpreter as a liveness check (the "records" column).
     */
    TextTable table() const;

    /** The comment banner the bench prints above the table. */
    static std::string header();

    /** header() + table().render(): the bench's exact stdout. */
    std::string report() const;

  private:
    struct Data; //!< operand storage the programs point into
    std::unique_ptr<Data> data_;
    std::vector<Table4Row> rows_;
};

} // namespace tmu::workloads
