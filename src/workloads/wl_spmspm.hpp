/**
 * @file
 * SpMSpM (compute-intensive) and TriangleCount (merge-intensive)
 * workload bindings.
 */

#pragma once

#include "tensor/csr.hpp"
#include "workloads/workload.hpp"

namespace tmu::workloads {

/** Gustavson SpMSpM, Z = A * A^T (paper Sec. 6). */
class SpmspmWorkload : public Workload
{
  public:
    std::string name() const override { return "SpMSpM"; }
    Class workloadClass() const override
    {
        return Class::ComputeIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

    /**
     * Fig. 12c ceiling inputs: A is rows x n with every row storing
     * columns {0..n-1} (ideal spatio-temporal locality); the product
     * is taken against the dense n x n block.
     */
    void prepareSynthetic(Index rows, Index nnzPerRow);

  private:
    tensor::CsrMatrix a_;
    tensor::CsrMatrix bt_; //!< right-hand side in CSR
    tensor::CsrMatrix ref_;
};

/** Triangle counting on the lower triangle (fused GraphBLAS form). */
class TricountWorkload : public Workload
{
  public:
    std::string name() const override { return "TC"; }
    Class workloadClass() const override
    {
        return Class::MergeIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsrMatrix l_;
    std::uint64_t ref_ = 0;
};

} // namespace tmu::workloads
