#include "table4.hpp"

#include "common/rng.hpp"
#include "plan/frontend/frontend.hpp"
#include "plan/lower.hpp"
#include "plan/plans.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tmu/functional.hpp"
#include "workloads/programs.hpp"

namespace tmu::workloads {

namespace {

tensor::CsrMatrix
table4Matrix()
{
    tensor::CsrGenConfig gc;
    gc.rows = 24;
    gc.cols = 24;
    gc.nnzPerRow = 4;
    gc.seed = 3;
    return tensor::randomCsr(gc);
}

tensor::SparseVector
table4SparseVector()
{
    std::vector<Index> svi;
    std::vector<Value> svv;
    for (Index i = 0; i < 24; i += 2) {
        svi.push_back(i);
        svv.push_back(1.0);
    }
    return {24, std::move(svi), std::move(svv)};
}

} // namespace

/** Tiny pinned operands, alive as long as the row programs are. */
struct Table4::Data
{
    tensor::CsrMatrix a = table4Matrix();
    tensor::CsrMatrix at = tensor::transposeCsr(a);
    tensor::DenseVector dv{24};
    tensor::DenseMatrix dm{24, 8};
    std::vector<tensor::DcsrMatrix> parts = tensor::splitCyclic(a, 4);
    tensor::CsrMatrix lower =
        tensor::lowerTriangle(tensor::rmatGraph(5, 4, 7));
    tensor::CooTensor coo =
        tensor::randomCooTensor({16, 24, 24}, 150, 0.0, 9);
    tensor::DenseMatrix z{16, 8, 0.0};
    tensor::CsfTensor csfA = tensor::cooToCsf(coo);
    tensor::CsfTensor csfB = tensor::cooToCsf(
        tensor::randomCooTensor({24, 24, 12}, 150, 0.0, 11));
    tensor::SparseVector sv = table4SparseVector();
    tensor::DenseVector x{24}; //!< plan output binding (handlers only)
    std::vector<Index> map;    //!< SpMM-SC row permutation
    tensor::DenseMatrix zs{24, 8, 0.0}; //!< SpMM-SC output binding

    Data()
    {
        Rng rng(5);
        for (Index i = 0; i < 24; ++i)
            dv[i] = rng.nextValue(0.1, 1.0);
        for (Index i = 0; i < 24; ++i)
            for (Index j = 0; j < 8; ++j)
                dm(i, j) = rng.nextValue(0.1, 1.0);
        map.resize(24);
        for (Index i = 0; i < 24; ++i)
            map[static_cast<size_t>(i)] = 23 - i;
    }
};

Table4::Table4() : data_(new Data)
{
    Data &d = *data_;

    // A row from a plan: labels are the spec's own metadata, so the
    // table is regenerated from the IR rather than hand-kept strings.
    auto planRow = [&](const plan::PlanSpec &ps) {
        rows_.push_back(
            {ps.name, ps.einsum, ps.formats, plan::lowerProgram(ps)});
    };
    auto legacyRow = [&](std::string algorithm, std::string einsum,
                         std::string formats, engine::TmuProgram p) {
        rows_.push_back({std::move(algorithm), std::move(einsum),
                         std::move(formats), std::move(p)});
    };

    planRow(plan::spmvPlan(d.a, d.dv, d.x, 4, 0, d.a.rows(),
                           plan::Variant::P0));
    planRow(plan::spmvPlan(d.a, d.dv, d.x, 4, 0, d.a.rows(),
                           plan::Variant::P1));
    legacyRow("SpMSpV", "Z(i) = A(i,j; csr) * B(j; sparse)", "A,B=CSR",
              buildSpmspv(d.a, d.sv, 0, d.a.rows()));
    legacyRow("SpMM P0", "Z(i,j) = A(i,k; csr) * B(k,j; dense)",
              "A=CSR", buildSpmmP0(d.a, d.dm, 4, 0, d.a.rows()));
    legacyRow("SpMM P1", "Z(i,j) = A(i,k; csr) * B(k,j; dense)",
              "A=CSR", buildSpmmP1(d.a, d.dm, 4, 0, d.a.rows()));
    legacyRow("SpMSpM P0", "Z(i,j; csr) = A(i,k; csr) * B(k,j; csr)",
              "A,B,Z=CSR", buildSpmspmP0(d.a, d.at, 4, 0, d.a.rows()));
    planRow(plan::spmspmPlan(d.a, d.at, 4, 0, d.a.rows()));
    planRow(plan::spkaddPlan(d.parts, 0, d.parts[0].rows()));
    planRow(plan::pagerankPlan(d.a, d.dv, d.x, 0.85, 4, 0, d.a.rows()));
    planRow(plan::tricountPlan(d.lower, 0, d.lower.rows()));
    planRow(plan::mttkrpPlan(d.coo, d.dm, d.dm, d.z, 4, 0, d.coo.nnz(),
                             plan::Variant::P1));
    planRow(plan::mttkrpPlan(d.coo, d.dm, d.dm, d.z, 4, 0, d.coo.nnz(),
                             plan::Variant::P2));
    legacyRow("SpTC", "Z(i,j) = A(i,k,l; csf) * B(l,k,j; csf)",
              "A,B=CSF",
              buildSptcSymbolic(d.csfA, d.csfB, 0, d.csfA.numNodes(0)));
    legacyRow("SpTTV", "Z(i,j) = A(i,j,k; csf) * B(k; dense)", "A=CSF",
              buildSpttv(d.csfA, d.dv, 4, 0, d.csfA.numNodes(0)));
    legacyRow("SpTTM", "Z(i,j,l) = A(i,j,k; csf) * B(k,l; dense)",
              "A=CSF",
              buildSpttm(d.csfA, d.dm, 4, 0, d.csfA.numNodes(0)));

    // Einsum-frontend rows: no hand-written builder or plan factory —
    // the PlanSpec is compiled from the one-line expression against
    // the pinned operands (appended so earlier rows keep their order).
    auto einsumRow = [&](const char *expr,
                         plan::frontend::EinsumBindings &fb) {
        plan::frontend::CompileOptions fo;
        fo.lanes = 4;
        planRow(
            plan::frontend::compileEinsum(expr, fb, fo).valueOrFatal());
    };
    {
        plan::frontend::EinsumBindings fb;
        fb.csr["A"] = &d.a;
        fb.mat["B"] = &d.dm;
        fb.mat["C"] = &d.dm;
        einsumRow("Z(i,j; csr) = A(i,j; csr) * B(i,k; dense) * "
                  "C(j,k; dense)",
                  fb);
    }
    {
        plan::frontend::EinsumBindings fb;
        fb.csr["A"] = &d.a;
        fb.mat["B"] = &d.dm;
        einsumRow("Z(i,j; csr) = A(i,k; csr) * B(k,j; dense)", fb);
    }
    {
        plan::frontend::EinsumBindings fb;
        fb.csr["A"] = &d.a;
        fb.mat["B"] = &d.dm;
        fb.maps["m"] = &d.map;
        fb.outMat = &d.zs;
        einsumRow("Z(m(i), j) = A(i,k; csr) * B(k,j; dense)", fb);
    }
}

Table4::~Table4() = default;

TextTable
Table4::table() const
{
    TextTable t("Table 4");
    t.header({"algorithm", "einsum", "formats", "layers",
              "traversals | streams | groups | callbacks", "records"});
    for (const Table4Row &row : rows_) {
        const auto records = engine::interpretToVector(row.program);
        t.row({row.algorithm, row.einsum, row.formats,
               std::to_string(row.program.numLayers()),
               row.program.summary(), std::to_string(records.size())});
    }
    return t;
}

std::string
Table4::header()
{
    return "### Table 4 - kernel -> TMU hardware mapping\n"
           "# (migrated rows introspected from the plan IR via "
           "lowerProgram, the rest from\n# the hand-written builders; "
           "every program is run through the functional\n# interpreter "
           "as a liveness check)\n\n";
}

std::string
Table4::report() const
{
    return header() + table().render();
}

} // namespace tmu::workloads
