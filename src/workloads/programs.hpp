/**
 * @file
 * TMU program builders for every Table-4 kernel mapping.
 *
 * Each builder returns the dataflow configuration for one core's slice
 * of the computation; the callback ids below are what the host-core
 * handlers (in the wl_*.cpp workload bindings) register against. These
 * builders are also introspected by bench/table4_mapping to regenerate
 * the paper's Table 4.
 */

#pragma once

#include <vector>

#include "tensor/coo.hpp"
#include "tensor/csf.hpp"
#include "tensor/csr.hpp"
#include "tensor/dcsr.hpp"
#include "tensor/dense.hpp"
#include "tensor/sparse_vector.hpp"
#include "tmu/program.hpp"

namespace tmu::workloads {

/** Callback ids shared by programs and handlers. */
enum Cb : int {
    kCbRi = 1,   //!< SpMV/PR row-iteration body (Fig. 6)
    kCbRe,       //!< SpMV/PR row-end store (Fig. 6)
    kCbSetA,     //!< SpMSpM: latch the current A value
    kCbAcc,      //!< SpMSpM: accumulate a B-row chunk
    kCbFlush,    //!< SpMSpM: row finished, write the workspace out
    kCbRow,      //!< SpKAdd: merged row coordinate
    kCbCol,      //!< SpKAdd: merged column group (Fig. 7)
    kCbRowEnd,   //!< SpKAdd: row finished
    kCbNnz,      //!< MTTKRP: latch nonzero value / output row
    kCbJ,        //!< MTTKRP: rank chunk
    kCbHit,      //!< TriangleCount: intersection hit
    kCbRoot,     //!< SpTC: new output row (A root)
    kCbJCoord,   //!< SpTC: candidate output column
    kCbRootEnd,  //!< SpTC: A root finished
};

/** SpMV P1 (Fig. 8): inner-loop lanes over one CSR row. */
engine::TmuProgram buildSpmvP1(const tensor::CsrMatrix &a,
                               const tensor::DenseVector &b, int lanes,
                               Index rowBeg, Index rowEnd);

/** SpMV P0: outer-loop lanes, one row per lane (Table 4). */
engine::TmuProgram buildSpmvP0(const tensor::CsrMatrix &a,
                               const tensor::DenseVector &b, int lanes,
                               Index rowBeg, Index rowEnd);

/** Gustavson SpMSpM P2: i single, k broadcast, j lanes (Table 4). */
engine::TmuProgram buildSpmspmP2(const tensor::CsrMatrix &a,
                                 const tensor::CsrMatrix &b, int lanes,
                                 Index rowBeg, Index rowEnd);

/** SpKAdd: K DCSR inputs in K lanes, hierarchical disjunctive merge. */
engine::TmuProgram buildSpkadd(const std::vector<tensor::DcsrMatrix> &in,
                               Index rowBeg, Index rowEnd);

/** TriangleCount: per edge (i,k), conjunctive merge of rows i and k. */
engine::TmuProgram buildTricount(const tensor::CsrMatrix &l,
                                 Index rowBeg, Index rowEnd);

/** MTTKRP P1: mode-level lanes (one nonzero per lane, Table 4). */
engine::TmuProgram buildMttkrpP1(const tensor::CooTensor &t,
                                 const tensor::DenseMatrix &b,
                                 const tensor::DenseMatrix &c,
                                 const tensor::DenseMatrix &z, int lanes,
                                 Index nnzBeg, Index nnzEnd);

/** MTTKRP P2: rank-level lanes (one j slice per lane, Table 4). */
engine::TmuProgram buildMttkrpP2(const tensor::CooTensor &t,
                                 const tensor::DenseMatrix &b,
                                 const tensor::DenseMatrix &c,
                                 const tensor::DenseMatrix &z, int lanes,
                                 Index nnzBeg, Index nnzEnd);

/** SpTC symbolic: A(i,k,l) against B(l,k,j), merge-based lookup. */
engine::TmuProgram buildSptcSymbolic(const tensor::CsfTensor &a,
                                     const tensor::CsfTensor &b,
                                     Index rootBeg, Index rootEnd);

/** SpMSpV: conjunctive merge of each CSR row with a sparse vector. */
engine::TmuProgram buildSpmspv(const tensor::CsrMatrix &a,
                               const tensor::SparseVector &b,
                               Index rowBeg, Index rowEnd);

/** SpMM P1: dense B rows scanned per A nonzero, lanes over columns. */
engine::TmuProgram buildSpmmP1(const tensor::CsrMatrix &a,
                               const tensor::DenseMatrix &b, int lanes,
                               Index rowBeg, Index rowEnd);

/** SpMM P0: full-nest lockstep, one output row per lane (Table 4). */
engine::TmuProgram buildSpmmP0(const tensor::CsrMatrix &a,
                               const tensor::DenseMatrix &b, int lanes,
                               Index rowBeg, Index rowEnd);

/** SpMSpM P0: full-nest lockstep, one output row per lane (Table 4). */
engine::TmuProgram buildSpmspmP0(const tensor::CsrMatrix &a,
                                 const tensor::CsrMatrix &b, int lanes,
                                 Index rowBeg, Index rowEnd);

/** SpTTV: CSF tensor times vector, lanes over the k fiber. */
engine::TmuProgram buildSpttv(const tensor::CsfTensor &a,
                              const tensor::DenseVector &b, int lanes,
                              Index rootBeg, Index rootEnd);

/** SpTTM: CSF tensor times matrix, lanes over the dense l columns. */
engine::TmuProgram buildSpttm(const tensor::CsfTensor &a,
                              const tensor::DenseMatrix &b, int lanes,
                              Index rootBeg, Index rootEnd);

} // namespace tmu::workloads
