/**
 * @file
 * Tensor workload bindings: MTTKRP (P1 mode-level / P2 rank-level),
 * SpTC (symbolic phase) and CP-ALS.
 */

#pragma once

#include "kernels/cpals.hpp"
#include "tensor/coo.hpp"
#include "tensor/csf.hpp"
#include "tensor/dense.hpp"
#include "workloads/workload.hpp"

namespace tmu::workloads {

/** MTTKRP over a COO tensor; P1 or P2 TMU parallelization. */
class MttkrpWorkload : public Workload
{
  public:
    enum class Variant { P1, P2 };

    explicit MttkrpWorkload(Variant v) : variant_(v) {}

    std::string name() const override
    {
        return variant_ == Variant::P1 ? "MTTKRP_MP" : "MTTKRP_CP";
    }
    Class workloadClass() const override
    {
        return Class::MemoryIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"T1", "T2", "T3", "T4"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

    static constexpr Index kRank = 16;

  private:
    Variant variant_;
    tensor::CooTensor t_;
    tensor::DenseMatrix b_;
    tensor::DenseMatrix c_;
    tensor::DenseMatrix ref_;
};

/** SpTC: symbolic contraction of two CSF tensors (paper Sec. 6). */
class SptcWorkload : public Workload
{
  public:
    std::string name() const override { return "SpTC"; }
    Class workloadClass() const override
    {
        return Class::MergeIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"T1", "T2", "T3", "T4"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsfTensor a_;
    tensor::CsfTensor b_;
    std::vector<Index> ref_;
};

/** CP-ALS: one full sweep (3 mode updates) of rank-16 ALS. */
class CpalsWorkload : public Workload
{
  public:
    std::string name() const override { return "CP-ALS"; }
    Class workloadClass() const override
    {
        return Class::MemoryIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"T1", "T2", "T3", "T4"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CooTensor t_;
    kernels::CpalsConfig cfg_;
    kernels::CpFactors init_;
    kernels::CpFactors ref_;
};

} // namespace tmu::workloads
