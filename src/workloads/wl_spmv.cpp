#include "wl_spmv.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/spmv.hpp"
#include "tensor/convert.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"
#include "workloads/programs.hpp"

namespace tmu::workloads {

using engine::OutqRecord;
using sim::MicroOp;
using tensor::DenseVector;

namespace {

/** Shared SpMV-shaped run: x = A * contrib, optional weight update. */
RunResult
runSpmvShaped(const RunConfig &cfg, const tensor::CsrMatrix &a,
              const DenseVector &b, const DenseVector &ref,
              bool pagerankUpdate, double damping)
{
    RunHarness h(cfg);
    const int cores = h.cores();
    DenseVector x(a.rows());
    const double base =
        (1.0 - damping) / static_cast<double>(a.rows());

    // Per-core row-iteration state for the TMU callbacks.
    struct CoreState
    {
        Index row = 0;
        Value sum = 0.0;
    };
    std::vector<CoreState> state(static_cast<size_t>(cores));

    if (cfg.mode == Mode::Baseline) {
        h.system().mem().registerIndexRegion(
            sim::addrOf(a.idxs().data(), 0),
            a.idxs().size() * sizeof(Index));
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(a.rows(), cores, c);
            if (pagerankUpdate) {
                h.addBaselineTrace(
                    c, kernels::tracePagerankIter(a, b, x, damping, beg,
                                                  end, h.simd()));
            } else {
                h.addBaselineTrace(c, kernels::traceSpmv(a, b, x, beg,
                                                         end, h.simd()));
            }
        }
    } else {
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(a.rows(), cores, c);
            auto &src = h.addTmuProgram(
                c, buildSpmvP1(a, b, cfg.programLanes, beg, end));
            CoreState &st = state[static_cast<size_t>(c)];
            st.row = beg;
            src.setHandler(kCbRi, [&st](const OutqRecord &rec,
                                        std::vector<MicroOp> &ops) {
                for (size_t i = 0; i < rec.operands[0].size(); ++i)
                    st.sum += rec.f64(0, static_cast<int>(i)) *
                              rec.f64(1, static_cast<int>(i));
                ops.push_back(MicroOp::flop(static_cast<std::uint16_t>(
                    2 * rec.operands[0].size())));
            });
            src.setHandler(
                kCbRe, [&st, &x, pagerankUpdate, damping, base](
                           const OutqRecord &,
                           std::vector<MicroOp> &ops) {
                    Value v = st.sum;
                    if (pagerankUpdate) {
                        v = base + damping * v;
                        ops.push_back(MicroOp::flop(2));
                    }
                    x[st.row] = v;
                    ops.push_back(MicroOp::store(
                        sim::addrOf(x.data(), st.row), 8));
                    ++st.row;
                    st.sum = 0.0;
                });
        }
    }

    RunResult res = h.finish();
    res.verified = true;
    for (Index i = 0; i < a.rows(); ++i) {
        if (std::abs(x[i] - ref[i]) > 1e-9 * (1.0 + std::abs(ref[i]))) {
            res.verified = false;
            break;
        }
    }
    return res;
}

} // namespace

void
SpmvWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    a_ = tensor::matrixInput(inputId).generate(scaleDiv);
    b_ = DenseVector(a_.cols());
    Rng rng(17);
    for (Index i = 0; i < b_.size(); ++i)
        b_[i] = rng.nextValue(0.1, 1.0);
    ref_ = kernels::spmvRef(a_, b_);
}

RunResult
SpmvWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    return runSpmvShaped(cfg, a_, b_, ref_, false, 0.0);
}

void
PagerankWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    a_ = tensor::matrixInput(inputId).generate(scaleDiv);
    const Index n = a_.rows();

    // One Jacobi iteration from the uniform start vector.
    const tensor::CsrMatrix at = tensor::transposeCsr(a_);
    contrib_ = DenseVector(n);
    for (Index j = 0; j < n; ++j) {
        const auto outdeg =
            static_cast<Value>(std::max<Index>(1, at.rowNnz(j)));
        contrib_[j] = (1.0 / static_cast<double>(n)) / outdeg;
    }
    kernels::PageRankConfig prc;
    prc.iterations = 1;
    prc.damping = damping_;
    ref_ = kernels::pagerankRef(a_, prc);
}

RunResult
PagerankWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    return runSpmvShaped(cfg, a_, contrib_, ref_, true, damping_);
}

} // namespace tmu::workloads
