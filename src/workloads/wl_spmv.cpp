#include "wl_spmv.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "kernels/pagerank.hpp"
#include "kernels/spmv.hpp"
#include "plan/frontend/frontend.hpp"
#include "plan/lower.hpp"
#include "tensor/convert.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"

namespace tmu::workloads {

using tensor::DenseVector;

namespace {

/** Shared SpMV-shaped run: x = A * contrib, optional weight update. */
RunResult
runSpmvShaped(const RunConfig &cfg, const tensor::CsrMatrix &a,
              const DenseVector &b, const DenseVector &ref,
              bool pagerankUpdate, double damping)
{
    RunHarness h(cfg);
    const int cores = h.cores();
    DenseVector x(a.rows());

    // Per-core row-iteration state for the TMU callbacks.
    std::vector<plan::PlanState> state(static_cast<size_t>(cores));

    if (cfg.mode == Mode::Baseline) {
        h.system().mem().registerIndexRegion(
            sim::addrOf(a.idxs().data(), 0),
            a.idxs().size() * sizeof(Index));
    }
    // The plans compile from their einsum; plan/plans.hpp keeps the
    // hand-authored specs as pinned comparison references.
    plan::frontend::EinsumBindings fb;
    fb.csr["A"] = &a;
    fb.outVec = &x;
    const char *expr;
    if (pagerankUpdate) {
        expr = "Z(i) = beta + alpha * A(i,j; csr) * X(j; dense)";
        fb.vec["X"] = &b;
        fb.scalars["alpha"] = damping;
        fb.scalars["beta"] =
            (1.0 - damping) / static_cast<double>(a.rows());
    } else {
        expr = "Z(i) = A(i,j; csr) * B(j; dense)";
        fb.vec["B"] = &b;
    }
    const Partition part =
        h.makeRunPartition(a.rows(), a.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        plan::frontend::CompileOptions fo;
        fo.lanes = cfg.programLanes;
        fo.beg = beg;
        fo.end = end;
        const plan::PlanSpec ps =
            plan::frontend::compileEinsum(expr, fb, fo).valueOrFatal();
        if (cfg.mode == Mode::Baseline) {
            h.addBaselineTrace(c, plan::lowerTrace(ps, {}, h.simd()));
        } else {
            auto &src = h.addTmuProgram(c, plan::lowerProgram(ps));
            plan::PlanState &st = state[static_cast<size_t>(c)];
            plan::initPlanState(ps, st);
            plan::bindHandlers(ps, src, st);
        }
    }

    RunResult res = h.finish();
    res.verified = true;
    for (Index i = 0; i < a.rows(); ++i) {
        if (std::abs(x[i] - ref[i]) > 1e-9 * (1.0 + std::abs(ref[i]))) {
            res.verified = false;
            break;
        }
    }
    return res;
}

} // namespace

void
SpmvWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    a_ = tensor::matrixInput(inputId).generate(scaleDiv);
    b_ = DenseVector(a_.cols());
    Rng rng(17);
    for (Index i = 0; i < b_.size(); ++i)
        b_[i] = rng.nextValue(0.1, 1.0);
    ref_ = kernels::spmvRef(a_, b_);
}

RunResult
SpmvWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    return runSpmvShaped(cfg, a_, b_, ref_, false, 0.0);
}

void
PagerankWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    a_ = tensor::matrixInput(inputId).generate(scaleDiv);
    const Index n = a_.rows();

    // One Jacobi iteration from the uniform start vector.
    const tensor::CsrMatrix at = tensor::transposeCsr(a_);
    contrib_ = DenseVector(n);
    for (Index j = 0; j < n; ++j) {
        const auto outdeg =
            static_cast<Value>(std::max<Index>(1, at.rowNnz(j)));
        contrib_[j] = (1.0 / static_cast<double>(n)) / outdeg;
    }
    kernels::PageRankConfig prc;
    prc.iterations = 1;
    prc.damping = damping_;
    ref_ = kernels::pagerankRef(a_, prc);
}

RunResult
PagerankWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    return runSpmvShaped(cfg, a_, contrib_, ref_, true, damping_);
}

} // namespace tmu::workloads
