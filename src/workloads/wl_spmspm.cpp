#include "wl_spmspm.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"
#include "kernels/spmspm.hpp"
#include "kernels/tricount.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"
#include "workloads/programs.hpp"

namespace tmu::workloads {

using engine::OutqRecord;
using sim::MicroOp;
using sim::addrOf;

void
SpmspmWorkload::prepareSynthetic(Index rows, Index nnzPerRow)
{
    a_ = tensor::fixedNnzCsr(rows, nnzPerRow);
    bt_ = tensor::fixedNnzCsr(nnzPerRow, nnzPerRow);
    ref_ = kernels::spmspmRef(a_, bt_);
}

void
SpmspmWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    // SpMSpM in the paper gets denser matrices than SpMV at the same
    // scale budget; scale a bit harder to keep runs tractable.
    a_ = tensor::matrixInput(inputId).generate(scaleDiv * 4);
    bt_ = tensor::transposeCsr(a_);
    ref_ = kernels::spmspmRef(a_, bt_);
}

RunResult
SpmspmWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();

    // Per-core output triplets (row-partitioned).
    struct CoreOut
    {
        std::vector<Index> idxs;
        std::vector<Value> vals;
        std::vector<Index> rowNnz;
        // TMU-mode accumulator workspace. Novelty is tracked with the
        // seen bitmap, not acc[j] == 0.0, so exact cancellation cannot
        // re-insert a column (see kernels/spmspm.cpp).
        std::vector<Value> acc;
        std::vector<char> seen;
        std::vector<Index> touched;
        Value aVal = 0.0;
    };
    std::vector<CoreOut> out(static_cast<size_t>(cores));

    if (cfg.mode == Mode::Baseline) {
        h.system().mem().registerIndexRegion(
            sim::addrOf(a_.idxs().data(), 0),
            a_.idxs().size() * sizeof(Index));
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(a_.rows(), cores, c);
            CoreOut &co = out[static_cast<size_t>(c)];
            // Stable collector bases keep the canonical address layout
            // reproducible (see sim/addrspace.hpp).
            const auto outNnz = static_cast<size_t>(
                ref_.rowBegin(end) - ref_.rowBegin(beg));
            co.idxs.reserve(outNnz);
            co.vals.reserve(outNnz);
            co.rowNnz.reserve(static_cast<size_t>(end - beg));
            h.addBaselineTrace(
                c, kernels::traceSpmspm(a_, bt_, co.idxs, co.vals,
                                        co.rowNnz, beg, end, h.simd()));
        }
    } else {
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(a_.rows(), cores, c);
            CoreOut &co = out[static_cast<size_t>(c)];
            co.acc.assign(static_cast<size_t>(bt_.cols()), 0.0);
            co.seen.assign(static_cast<size_t>(bt_.cols()), 0);
            const auto outNnz = static_cast<size_t>(
                ref_.rowBegin(end) - ref_.rowBegin(beg));
            co.idxs.reserve(outNnz);
            co.vals.reserve(outNnz);
            co.rowNnz.reserve(static_cast<size_t>(end - beg));
            auto &src = h.addTmuProgram(
                c, buildSpmspmP2(a_, bt_, cfg.programLanes, beg, end));

            src.setHandler(kCbSetA, [&co](const OutqRecord &rec,
                                          std::vector<MicroOp> &ops) {
                co.aVal = rec.f64(0, 0);
                ops.push_back(MicroOp::iop());
            });
            src.setHandler(kCbAcc, [&co](const OutqRecord &rec,
                                         std::vector<MicroOp> &ops) {
                const auto n = rec.operands[0].size();
                // Scatter-accumulate into the workspace: per lane a
                // load + FMA + store on acc[j].
                for (size_t i = 0; i < n; ++i) {
                    const auto j =
                        static_cast<size_t>(rec.i64(0,
                                                    static_cast<int>(i)));
                    if (!co.seen[j]) {
                        co.seen[j] = 1;
                        co.touched.push_back(static_cast<Index>(j));
                    }
                    co.acc[j] +=
                        co.aVal * rec.f64(1, static_cast<int>(i));
                    ops.push_back(MicroOp::load(
                        addrOf(co.acc.data(), static_cast<Index>(j)),
                        8));
                    ops.push_back(MicroOp::store(
                        addrOf(co.acc.data(), static_cast<Index>(j)),
                        8));
                }
                ops.push_back(MicroOp::flop(
                    static_cast<std::uint16_t>(2 * n)));
            });
            src.setHandler(kCbFlush, [&co](const OutqRecord &,
                                           std::vector<MicroOp> &ops) {
                std::sort(co.touched.begin(), co.touched.end());
                const auto tn = static_cast<double>(co.touched.size());
                const auto cmps = static_cast<Index>(
                    tn > 1.0 ? tn * std::log2(tn) : 0.0);
                for (Index i = 0; i < cmps; ++i)
                    ops.push_back(MicroOp::iop());
                for (const Index j : co.touched) {
                    co.idxs.push_back(j);
                    co.vals.push_back(co.acc[static_cast<size_t>(j)]);
                    co.acc[static_cast<size_t>(j)] = 0.0;
                    co.seen[static_cast<size_t>(j)] = 0;
                    ops.push_back(MicroOp::load(
                        addrOf(co.acc.data(), j), 8));
                    ops.push_back(MicroOp::store(
                        addrOf(co.vals.data(),
                               static_cast<Index>(co.vals.size() - 1)),
                        8));
                }
                co.rowNnz.push_back(
                    static_cast<Index>(co.touched.size()));
                co.touched.clear();
            });
        }
    }

    RunResult res = h.finish();

    // Stitch the row partitions together and compare against the
    // reference product.
    res.verified = true;
    for (int c = 0; c < cores && res.verified; ++c) {
        const auto [beg, end] = partition(a_.rows(), cores, c);
        const CoreOut &co = out[static_cast<size_t>(c)];
        if (co.rowNnz.size() != static_cast<size_t>(end - beg)) {
            res.verified = false;
            break;
        }
        size_t q = 0;
        for (Index i = beg; i < end && res.verified; ++i) {
            if (co.rowNnz[static_cast<size_t>(i - beg)] !=
                ref_.rowNnz(i)) {
                res.verified = false;
                break;
            }
            for (Index p = ref_.rowBegin(i); p < ref_.rowEnd(i);
                 ++p, ++q) {
                if (co.idxs[q] !=
                        ref_.idxs()[static_cast<size_t>(p)] ||
                    std::abs(co.vals[q] -
                             ref_.vals()[static_cast<size_t>(p)]) >
                        1e-9) {
                    res.verified = false;
                    break;
                }
            }
        }
    }
    return res;
}

void
TricountWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    // Build a symmetric graph from the suite matrix's pattern, then
    // keep the strict lower triangle.
    tensor::CsrMatrix a =
        tensor::matrixInput(inputId).generate(scaleDiv * 4);
    tensor::CooTensor coo = tensor::csrToCoo(a);
    tensor::CooTensor sym({a.rows(), a.rows()});
    for (Index p = 0; p < coo.nnz(); ++p) {
        const Index i = coo.idx(0, p);
        const Index j = coo.idx(1, p) % a.rows();
        if (i == j)
            continue;
        sym.push2(i, j, 1.0);
        sym.push2(j, i, 1.0);
    }
    sym.sortAndCombine();
    for (auto &v : sym.vals())
        v = 1.0;
    l_ = tensor::lowerTriangle(tensor::cooToCsr(sym));
    ref_ = kernels::tricountRef(l_);
}

RunResult
TricountWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(l_.rows() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();
    std::vector<std::uint64_t> counts(static_cast<size_t>(cores), 0);

    if (cfg.mode == Mode::Baseline) {
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(l_.rows(), cores, c);
            h.addBaselineTrace(
                c, kernels::traceTricount(
                       l_, counts[static_cast<size_t>(c)], beg, end,
                       h.simd()));
        }
    } else {
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(l_.rows(), cores, c);
            auto &src =
                h.addTmuProgram(c, buildTricount(l_, beg, end));
            auto &count = counts[static_cast<size_t>(c)];
            src.setHandler(kCbHit, [&count](const OutqRecord &,
                                            std::vector<MicroOp> &ops) {
                ++count;
                ops.push_back(MicroOp::iop());
            });
        }
    }

    RunResult res = h.finish();
    std::uint64_t total = 0;
    for (const auto c : counts)
        total += c;
    res.verified = total == ref_;
    return res;
}

} // namespace tmu::workloads
