#include "wl_spmspm.hpp"

#include <cmath>

#include "common/log.hpp"
#include "kernels/spmspm.hpp"
#include "kernels/tricount.hpp"
#include "plan/frontend/frontend.hpp"
#include "plan/lower.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"

namespace tmu::workloads {

void
SpmspmWorkload::prepareSynthetic(Index rows, Index nnzPerRow)
{
    a_ = tensor::fixedNnzCsr(rows, nnzPerRow);
    bt_ = tensor::fixedNnzCsr(nnzPerRow, nnzPerRow);
    ref_ = kernels::spmspmRef(a_, bt_);
}

void
SpmspmWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    // SpMSpM in the paper gets denser matrices than SpMV at the same
    // scale budget; scale a bit harder to keep runs tractable.
    a_ = tensor::matrixInput(inputId).generate(scaleDiv * 4);
    bt_ = tensor::transposeCsr(a_);
    ref_ = kernels::spmspmRef(a_, bt_);
}

RunResult
SpmspmWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();

    // Per-core output triplets (row-partitioned) plus the TMU-mode
    // accumulator workspace. Novelty is tracked with the seen bitmap,
    // not acc[j] == 0.0, so exact cancellation cannot re-insert a
    // column (see kernels/spmspm.cpp).
    std::vector<plan::PlanState> out(static_cast<size_t>(cores));

    if (cfg.mode == Mode::Baseline) {
        h.system().mem().registerIndexRegion(
            sim::addrOf(a_.idxs().data(), 0),
            a_.idxs().size() * sizeof(Index));
    }
    const Partition part =
        h.makeRunPartition(a_.rows(), a_.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        plan::PlanState &st = out[static_cast<size_t>(c)];
        // Stable collector bases keep the canonical address layout
        // reproducible (see sim/addrspace.hpp).
        const auto outNnz = static_cast<size_t>(ref_.rowBegin(end) -
                                                ref_.rowBegin(beg));
        st.idxs.reserve(outNnz);
        st.vals.reserve(outNnz);
        st.rowNnz.reserve(static_cast<size_t>(end - beg));
        plan::frontend::EinsumBindings fb;
        fb.csr["A"] = &a_;
        fb.csr["B"] = &bt_;
        plan::frontend::CompileOptions fo;
        fo.lanes = cfg.programLanes;
        fo.beg = beg;
        fo.end = end;
        const plan::PlanSpec ps =
            plan::frontend::compileEinsum(
                "Z(i,j; csr) = A(i,k; csr) * B(k,j; csr)", fb, fo)
                .valueOrFatal();
        if (cfg.mode == Mode::Baseline) {
            h.addBaselineTrace(
                c, plan::lowerTrace(
                       ps, {&st.idxs, &st.vals, &st.rowNnz, nullptr},
                       h.simd()));
        } else {
            auto &src = h.addTmuProgram(c, plan::lowerProgram(ps));
            plan::initPlanState(ps, st);
            plan::bindHandlers(ps, src, st);
        }
    }

    RunResult res = h.finish();

    // Stitch the row partitions together and compare against the
    // reference product.
    res.verified = true;
    for (int c = 0; c < cores && res.verified; ++c) {
        const auto [beg, end] = part.range(c);
        const plan::PlanState &st = out[static_cast<size_t>(c)];
        if (st.rowNnz.size() != static_cast<size_t>(end - beg)) {
            res.verified = false;
            break;
        }
        size_t q = 0;
        for (Index i = beg; i < end && res.verified; ++i) {
            if (st.rowNnz[static_cast<size_t>(i - beg)] !=
                ref_.rowNnz(i)) {
                res.verified = false;
                break;
            }
            for (Index p = ref_.rowBegin(i); p < ref_.rowEnd(i);
                 ++p, ++q) {
                if (st.idxs[q] !=
                        ref_.idxs()[static_cast<size_t>(p)] ||
                    std::abs(st.vals[q] -
                             ref_.vals()[static_cast<size_t>(p)]) >
                        1e-9) {
                    res.verified = false;
                    break;
                }
            }
        }
    }
    return res;
}

void
TricountWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    // Build a symmetric graph from the suite matrix's pattern, then
    // keep the strict lower triangle.
    tensor::CsrMatrix a =
        tensor::matrixInput(inputId).generate(scaleDiv * 4);
    tensor::CooTensor coo = tensor::csrToCoo(a);
    tensor::CooTensor sym({a.rows(), a.rows()});
    for (Index p = 0; p < coo.nnz(); ++p) {
        const Index i = coo.idx(0, p);
        const Index j = coo.idx(1, p) % a.rows();
        if (i == j)
            continue;
        sym.push2(i, j, 1.0);
        sym.push2(j, i, 1.0);
    }
    sym.sortAndCombine();
    for (auto &v : sym.vals())
        v = 1.0;
    l_ = tensor::lowerTriangle(tensor::cooToCsr(sym));
    ref_ = kernels::tricountRef(l_);
}

RunResult
TricountWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(l_.rows() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();
    std::vector<plan::PlanState> st(static_cast<size_t>(cores));

    const Partition part =
        h.makeRunPartition(l_.rows(), l_.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        plan::PlanState &s = st[static_cast<size_t>(c)];
        plan::frontend::EinsumBindings fb;
        fb.csr["L"] = &l_;
        plan::frontend::CompileOptions fo;
        fo.beg = beg;
        fo.end = end;
        const plan::PlanSpec ps =
            plan::frontend::compileEinsum(
                "c = L(i,k; csr) * L(k,j; csr) * L(i,j; csr)", fb, fo)
                .valueOrFatal();
        if (cfg.mode == Mode::Baseline) {
            plan::TraceSinks io;
            io.count = &s.count;
            h.addBaselineTrace(c, plan::lowerTrace(ps, io, h.simd()));
        } else {
            auto &src = h.addTmuProgram(c, plan::lowerProgram(ps));
            plan::initPlanState(ps, s);
            plan::bindHandlers(ps, src, s);
        }
    }

    RunResult res = h.finish();
    std::uint64_t total = 0;
    for (const auto &s : st)
        total += s.count;
    res.verified = total == ref_;
    return res;
}

} // namespace tmu::workloads
