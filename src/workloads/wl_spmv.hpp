/**
 * @file
 * SpMV and PageRank workload bindings (memory-intensive class).
 */

#pragma once

#include "tensor/csr.hpp"
#include "tensor/dense.hpp"
#include "workloads/workload.hpp"

namespace tmu::workloads {

/** SpMV CSR (paper Sec. 6): TACO/SVE baseline vs TMU P1. */
class SpmvWorkload : public Workload
{
  public:
    std::string name() const override { return "SpMV"; }
    Class workloadClass() const override
    {
        return Class::MemoryIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsrMatrix a_;
    tensor::DenseVector b_;
    tensor::DenseVector ref_;
};

/** PageRank (GAP-style Jacobi iteration; one timed iteration). */
class PagerankWorkload : public Workload
{
  public:
    std::string name() const override { return "PR"; }
    Class workloadClass() const override
    {
        return Class::MemoryIntensive;
    }
    std::vector<std::string> inputs() const override
    {
        return {"M1", "M2", "M3", "M4", "M5", "M6"};
    }
    void prepare(const std::string &inputId, Index scaleDiv) override;
    RunResult run(const RunConfig &cfg) override;

  private:
    tensor::CsrMatrix a_;
    tensor::DenseVector contrib_;
    tensor::DenseVector ref_;
    double damping_ = 0.85;
};

} // namespace tmu::workloads
