#include "wl_einsum.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "plan/frontend/frontend.hpp"
#include "plan/lower.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"

namespace tmu::workloads {

using tensor::CsrMatrix;
using tensor::DenseMatrix;

namespace {

/** Compile @p expr for one core's row slice, fatal on any diagnostic
 *  (the expressions here are compile-time constants). */
plan::PlanSpec
compileSlice(const char *expr,
             const plan::frontend::EinsumBindings &fb,
             const RunConfig &cfg, Index beg, Index end)
{
    plan::frontend::CompileOptions fo;
    fo.lanes = cfg.programLanes;
    fo.beg = beg;
    fo.end = end;
    return plan::frontend::compileEinsum(expr, fb, fo).valueOrFatal();
}

bool
near(Value got, Value want)
{
    return std::abs(got - want) <= 1e-9 * (1.0 + std::abs(want));
}

} // namespace

void
SddmmWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    a_ = tensor::matrixInput(inputId).generate(scaleDiv);
    Rng rng(29);
    b_ = DenseMatrix(a_.rows(), kRank);
    c_ = DenseMatrix(a_.cols(), kRank);
    for (Index i = 0; i < b_.rows(); ++i)
        for (Index k = 0; k < kRank; ++k)
            b_(i, k) = rng.nextValue(0.1, 1.0);
    for (Index j = 0; j < c_.rows(); ++j)
        for (Index k = 0; k < kRank; ++k)
            c_(j, k) = rng.nextValue(0.1, 1.0);

    // Reference by plain host loops: the sampled pattern is A's own.
    refVals_.clear();
    refVals_.reserve(static_cast<size_t>(a_.nnz()));
    for (Index i = 0; i < a_.rows(); ++i) {
        for (Index p = a_.rowBegin(i); p < a_.rowEnd(i); ++p) {
            const Index j = a_.idxs()[static_cast<size_t>(p)];
            Value dot = 0.0;
            for (Index k = 0; k < kRank; ++k)
                dot += b_(i, k) * c_(j, k);
            refVals_.push_back(a_.vals()[static_cast<size_t>(p)] *
                               dot);
        }
    }
}

RunResult
SddmmWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();
    std::vector<plan::PlanState> out(static_cast<size_t>(cores));

    if (cfg.mode == Mode::Baseline) {
        h.system().mem().registerIndexRegion(
            sim::addrOf(a_.idxs().data(), 0),
            a_.idxs().size() * sizeof(Index));
    }
    plan::frontend::EinsumBindings fb;
    fb.csr["A"] = &a_;
    fb.mat["B"] = &b_;
    fb.mat["C"] = &c_;
    const Partition part =
        h.makeRunPartition(a_.rows(), a_.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        plan::PlanState &st = out[static_cast<size_t>(c)];
        // Exact-capacity reserves keep collector addresses stable
        // (see sim/addrspace.hpp); the output pattern is A's.
        const auto outNnz = static_cast<size_t>(a_.rowBegin(end) -
                                                a_.rowBegin(beg));
        st.idxs.reserve(outNnz);
        st.vals.reserve(outNnz);
        st.rowNnz.reserve(static_cast<size_t>(end - beg));
        const plan::PlanSpec ps =
            compileSlice(kEinsum, fb, cfg, beg, end);
        if (cfg.mode == Mode::Baseline) {
            h.addBaselineTrace(
                c, plan::lowerTrace(
                       ps, {&st.idxs, &st.vals, &st.rowNnz, nullptr},
                       h.simd()));
        } else {
            auto &src = h.addTmuProgram(c, plan::lowerProgram(ps));
            plan::initPlanState(ps, st);
            plan::bindHandlers(ps, src, st);
        }
    }

    RunResult res = h.finish();
    res.verified = true;
    for (int c = 0; c < cores && res.verified; ++c) {
        const auto [beg, end] = part.range(c);
        const plan::PlanState &st = out[static_cast<size_t>(c)];
        if (st.rowNnz.size() != static_cast<size_t>(end - beg) ||
            st.idxs.size() !=
                static_cast<size_t>(a_.rowBegin(end) -
                                    a_.rowBegin(beg))) {
            res.verified = false;
            break;
        }
        size_t q = 0;
        for (Index i = beg; i < end && res.verified; ++i) {
            if (st.rowNnz[static_cast<size_t>(i - beg)] !=
                a_.rowNnz(i)) {
                res.verified = false;
                break;
            }
            for (Index p = a_.rowBegin(i); p < a_.rowEnd(i);
                 ++p, ++q) {
                if (st.idxs[q] !=
                        a_.idxs()[static_cast<size_t>(p)] ||
                    !near(st.vals[q],
                          refVals_[static_cast<size_t>(p)])) {
                    res.verified = false;
                    break;
                }
            }
        }
    }
    return res;
}

void
SpmmWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    // Denser scaling, like SpMSpM: the output image is rows x kCols.
    a_ = tensor::matrixInput(inputId).generate(scaleDiv * 4);
    Rng rng(31);
    b_ = DenseMatrix(a_.cols(), kCols);
    for (Index k = 0; k < b_.rows(); ++k)
        for (Index j = 0; j < kCols; ++j)
            b_(k, j) = rng.nextValue(0.1, 1.0);

    ref_ = DenseMatrix(a_.rows(), kCols, 0.0);
    for (Index i = 0; i < a_.rows(); ++i) {
        for (Index p = a_.rowBegin(i); p < a_.rowEnd(i); ++p) {
            const Index k = a_.idxs()[static_cast<size_t>(p)];
            const Value av = a_.vals()[static_cast<size_t>(p)];
            for (Index j = 0; j < kCols; ++j)
                ref_(i, j) += av * b_(k, j);
        }
    }
}

RunResult
SpmmWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();
    std::vector<plan::PlanState> out(static_cast<size_t>(cores));

    if (cfg.mode == Mode::Baseline) {
        h.system().mem().registerIndexRegion(
            sim::addrOf(a_.idxs().data(), 0),
            a_.idxs().size() * sizeof(Index));
    }
    plan::frontend::EinsumBindings fb;
    fb.csr["A"] = &a_;
    fb.mat["B"] = &b_;
    const Partition part =
        h.makeRunPartition(a_.rows(), a_.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        plan::PlanState &st = out[static_cast<size_t>(c)];
        // Every non-empty A row emits a full dense output row.
        size_t nonEmpty = 0;
        for (Index i = beg; i < end; ++i)
            nonEmpty += a_.rowNnz(i) > 0 ? 1 : 0;
        st.idxs.reserve(nonEmpty * static_cast<size_t>(kCols));
        st.vals.reserve(nonEmpty * static_cast<size_t>(kCols));
        st.rowNnz.reserve(static_cast<size_t>(end - beg));
        const plan::PlanSpec ps =
            compileSlice(kEinsum, fb, cfg, beg, end);
        if (cfg.mode == Mode::Baseline) {
            h.addBaselineTrace(
                c, plan::lowerTrace(
                       ps, {&st.idxs, &st.vals, &st.rowNnz, nullptr},
                       h.simd()));
        } else {
            auto &src = h.addTmuProgram(c, plan::lowerProgram(ps));
            plan::initPlanState(ps, st);
            plan::bindHandlers(ps, src, st);
        }
    }

    RunResult res = h.finish();
    res.verified = true;
    for (int c = 0; c < cores && res.verified; ++c) {
        const auto [beg, end] = part.range(c);
        const plan::PlanState &st = out[static_cast<size_t>(c)];
        if (st.rowNnz.size() != static_cast<size_t>(end - beg)) {
            res.verified = false;
            break;
        }
        size_t q = 0;
        for (Index i = beg; i < end && res.verified; ++i) {
            const Index want = a_.rowNnz(i) > 0 ? kCols : 0;
            if (st.rowNnz[static_cast<size_t>(i - beg)] != want) {
                res.verified = false;
                break;
            }
            for (Index j = 0; j < want; ++j, ++q) {
                if (st.idxs[q] != j ||
                    !near(st.vals[q], ref_(i, j))) {
                    res.verified = false;
                    break;
                }
            }
        }
        if (q != st.idxs.size())
            res.verified = false;
    }
    return res;
}

void
SpmmScatterWorkload::prepare(const std::string &inputId,
                             Index scaleDiv)
{
    a_ = tensor::matrixInput(inputId).generate(scaleDiv * 4);
    Rng rng(37);
    b_ = DenseMatrix(a_.cols(), kCols);
    for (Index k = 0; k < b_.rows(); ++k)
        for (Index j = 0; j < kCols; ++j)
            b_(k, j) = rng.nextValue(0.1, 1.0);

    // Deterministic permutation map (Fisher-Yates): the GNN-style
    // neighborhood reordering the scatter output models.
    const Index rows = a_.rows();
    map_.resize(static_cast<size_t>(rows));
    for (Index i = 0; i < rows; ++i)
        map_[static_cast<size_t>(i)] = i;
    for (Index i = rows - 1; i > 0; --i) {
        const auto j = static_cast<size_t>(
            rng.next() % static_cast<std::uint64_t>(i + 1));
        std::swap(map_[static_cast<size_t>(i)], map_[j]);
    }

    ref_ = DenseMatrix(rows, kCols, 0.0);
    for (Index i = 0; i < rows; ++i) {
        const Index zi = map_[static_cast<size_t>(i)];
        for (Index p = a_.rowBegin(i); p < a_.rowEnd(i); ++p) {
            const Index k = a_.idxs()[static_cast<size_t>(p)];
            const Value av = a_.vals()[static_cast<size_t>(p)];
            for (Index j = 0; j < kCols; ++j)
                ref_(zi, j) += av * b_(k, j);
        }
    }
}

RunResult
SpmmScatterWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();
    std::vector<plan::PlanState> st(static_cast<size_t>(cores));
    // Per-core private accumulators, summed for verification (the map
    // is a permutation, so each Z row has exactly one writer, but the
    // private copies keep the pattern uniform with MTTKRP).
    std::vector<DenseMatrix> z;
    z.reserve(static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c)
        z.emplace_back(a_.rows(), kCols, 0.0);

    if (cfg.mode == Mode::Baseline) {
        h.system().mem().registerIndexRegion(
            sim::addrOf(a_.idxs().data(), 0),
            a_.idxs().size() * sizeof(Index));
    }
    const Partition part =
        h.makeRunPartition(a_.rows(), a_.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        plan::frontend::EinsumBindings fb;
        fb.csr["A"] = &a_;
        fb.mat["B"] = &b_;
        fb.maps["m"] = &map_;
        fb.outMat = &z[static_cast<size_t>(c)];
        const plan::PlanSpec ps =
            compileSlice(kEinsum, fb, cfg, beg, end);
        if (cfg.mode == Mode::Baseline) {
            h.addBaselineTrace(c, plan::lowerTrace(ps, {}, h.simd()));
        } else {
            auto &src = h.addTmuProgram(c, plan::lowerProgram(ps));
            plan::PlanState &s = st[static_cast<size_t>(c)];
            plan::initPlanState(ps, s);
            plan::bindHandlers(ps, src, s);
        }
    }

    RunResult res = h.finish();
    res.verified = true;
    for (Index i = 0; i < a_.rows() && res.verified; ++i) {
        for (Index j = 0; j < kCols; ++j) {
            Value sum = 0.0;
            for (const DenseMatrix &zc : z)
                sum += zc(i, j);
            if (!near(sum, ref_(i, j))) {
                res.verified = false;
                break;
            }
        }
    }
    return res;
}

} // namespace tmu::workloads
