#include "wl_merge.hpp"

#include <cmath>

#include "common/log.hpp"
#include "kernels/spadd.hpp"
#include "plan/frontend/frontend.hpp"
#include "plan/lower.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"

namespace tmu::workloads {

namespace {

/** Compare stitched per-core triples against a reference CSR. */
bool
verifyMerged(const std::vector<plan::PlanState> &out,
             const tensor::CsrMatrix &ref)
{
    size_t q[64] = {};
    for (Index i = 0; i < ref.rows(); ++i) {
        // Find the core that emitted row i (row-partitioned: at most 1).
        for (Index p = ref.rowBegin(i); p < ref.rowEnd(i); ++p) {
            bool found = false;
            for (size_t c = 0; c < out.size() && !found; ++c) {
                size_t &cq = q[c];
                if (cq < out[c].rows.size() && out[c].rows[cq] == i) {
                    if (out[c].idxs[cq] !=
                            ref.idxs()[static_cast<size_t>(p)] ||
                        std::abs(out[c].vals[cq] -
                                 ref.vals()[static_cast<size_t>(p)]) >
                            1e-9) {
                        return false;
                    }
                    ++cq;
                    found = true;
                }
            }
            if (!found)
                return false;
        }
    }
    size_t total = 0;
    for (const auto &o : out)
        total += o.idxs.size();
    return total == static_cast<size_t>(ref.nnz());
}

/** SpKAdd-shaped run over @p parts with reference @p ref. */
RunResult
runKAdd(const RunConfig &cfg,
        const std::vector<tensor::DcsrMatrix> &parts,
        const tensor::CsrMatrix &ref)
{
    RunHarness h(cfg);
    const int cores = h.cores();
    const Index rows = ref.rows();

    std::vector<plan::PlanState> out(static_cast<size_t>(cores));
    // Baseline row starts, for rebuilding row coordinates afterwards.
    std::vector<Index> rowBeg(static_cast<size_t>(cores), 0);

    // Balance on the merged output's nnz structure (ref row pointers).
    const Partition part = h.makeRunPartition(rows, ref.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        plan::PlanState &st = out[static_cast<size_t>(c)];
        // Reserve the exact output size so the collectors never
        // reallocate mid-run: their addresses enter the timing
        // stream, and a stable base keeps the canonical address
        // layout reproducible (see sim/addrspace.hpp).
        const auto outNnz = static_cast<size_t>(ref.rowBegin(end) -
                                                ref.rowBegin(beg));
        plan::frontend::EinsumBindings fb;
        fb.ensembles["A^k"] = &parts;
        plan::frontend::CompileOptions fo;
        fo.beg = beg;
        fo.end = end;
        const plan::PlanSpec ps =
            plan::frontend::compileEinsum(
                "Z(i,j; dcsr) = sum_k A^k(i,j; dcsr)", fb, fo)
                .valueOrFatal();
        if (cfg.mode == Mode::Baseline) {
            rowBeg[static_cast<size_t>(c)] = beg;
            st.idxs.reserve(outNnz);
            st.vals.reserve(outNnz);
            st.rowNnz.reserve(static_cast<size_t>(end - beg));
            h.addBaselineTrace(
                c, plan::lowerTrace(
                       ps, {&st.idxs, &st.vals, &st.rowNnz, nullptr},
                       h.simd()));
        } else {
            st.rows.reserve(outNnz);
            st.idxs.reserve(outNnz);
            st.vals.reserve(outNnz);
            auto &src = h.addTmuProgram(c, plan::lowerProgram(ps));
            plan::initPlanState(ps, st);
            plan::bindHandlers(ps, src, st);
        }
    }

    RunResult res = h.finish();

    if (cfg.mode == Mode::Baseline) {
        // Rebuild the per-element row coordinates from the baseline
        // rowNnz collectors for one shared verification path.
        for (int c = 0; c < cores; ++c) {
            plan::PlanState &st = out[static_cast<size_t>(c)];
            for (size_t lr = 0; lr < st.rowNnz.size(); ++lr) {
                for (Index e = 0; e < st.rowNnz[lr]; ++e) {
                    st.rows.push_back(rowBeg[static_cast<size_t>(c)] +
                                      static_cast<Index>(lr));
                }
            }
        }
    }
    res.verified = verifyMerged(out, ref);
    return res;
}

} // namespace

void
SpkaddWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    const tensor::CsrMatrix a =
        tensor::matrixInput(inputId).generate(scaleDiv);
    parts_ = tensor::splitCyclic(a, kInputs);
    ref_ = kernels::spkaddRef(parts_);
}

RunResult
SpkaddWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(!parts_.empty(), "prepare() was not called");
    return runKAdd(cfg, parts_, ref_);
}

void
SpaddWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    const auto &in = tensor::matrixInput(inputId);
    a_ = in.generate(scaleDiv);
    // A structurally-similar second operand from a different seed.
    tensor::CsrGenConfig gen;
    gen.rows = a_.rows();
    gen.cols = a_.cols();
    gen.nnzPerRow = std::max(1.0, a_.nnzPerRow());
    gen.seed = 0xABCD ^ static_cast<std::uint64_t>(inputId[1]);
    b_ = tensor::randomCsr(gen);
    asDcsr_ = {tensor::csrToDcsr(a_), tensor::csrToDcsr(b_)};
    ref_ = kernels::spaddRef(a_, b_);
}

RunResult
SpaddWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    if (cfg.mode == Mode::Tmu)
        return runKAdd(cfg, asDcsr_, ref_);

    // Baseline SpAdd keeps the dedicated two-way merge kernel (the
    // legacy path): it is not plan-lowered.
    RunHarness h(cfg);
    const int cores = h.cores();
    struct BaseOut
    {
        std::vector<Index> idxs;
        std::vector<Value> vals;
        std::vector<Index> rowNnz;
    };
    std::vector<BaseOut> out(static_cast<size_t>(cores));
    const Partition part =
        h.makeRunPartition(a_.rows(), ref_.ptrs().data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        BaseOut &bo = out[static_cast<size_t>(c)];
        h.addBaselineTrace(c, kernels::traceSpadd(a_, b_, bo.idxs,
                                                  bo.vals, bo.rowNnz,
                                                  beg, end, h.simd()));
    }
    RunResult res = h.finish();
    Index total = 0;
    for (const auto &bo : out)
        total += static_cast<Index>(bo.idxs.size());
    res.verified = total == ref_.nnz();
    return res;
}

} // namespace tmu::workloads
