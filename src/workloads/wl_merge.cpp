#include "wl_merge.hpp"

#include <cmath>

#include "common/log.hpp"
#include "kernels/spadd.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"
#include "workloads/programs.hpp"

namespace tmu::workloads {

using engine::OutqRecord;
using sim::MicroOp;
using sim::addrOf;

namespace {

/** Per-core merged-output collector shared by SpKAdd and SpAdd. */
struct MergeOut
{
    std::vector<Index> rows;
    std::vector<Index> idxs;
    std::vector<Value> vals;
    Index curRow = kInvalidIndex;
};

/** Compare stitched per-core triples against a reference CSR. */
bool
verifyMerged(const std::vector<MergeOut> &out, const tensor::CsrMatrix &ref)
{
    size_t q[64] = {};
    for (Index i = 0; i < ref.rows(); ++i) {
        // Find the core that emitted row i (row-partitioned: at most 1).
        for (Index p = ref.rowBegin(i); p < ref.rowEnd(i); ++p) {
            bool found = false;
            for (size_t c = 0; c < out.size() && !found; ++c) {
                size_t &cq = q[c];
                if (cq < out[c].rows.size() && out[c].rows[cq] == i) {
                    if (out[c].idxs[cq] !=
                            ref.idxs()[static_cast<size_t>(p)] ||
                        std::abs(out[c].vals[cq] -
                                 ref.vals()[static_cast<size_t>(p)]) >
                            1e-9) {
                        return false;
                    }
                    ++cq;
                    found = true;
                }
            }
            if (!found)
                return false;
        }
    }
    size_t total = 0;
    for (const auto &o : out)
        total += o.idxs.size();
    return total == static_cast<size_t>(ref.nnz());
}

/** SpKAdd-shaped run over @p parts with reference @p ref. */
RunResult
runKAdd(const RunConfig &cfg,
        const std::vector<tensor::DcsrMatrix> &parts,
        const tensor::CsrMatrix &ref, sim::Trace (*traceFn)(
            const std::vector<tensor::DcsrMatrix> &,
            std::vector<Index> &, std::vector<Value> &,
            std::vector<Index> &, Index, Index, sim::SimdConfig))
{
    RunHarness h(cfg);
    const int cores = h.cores();
    const Index rows = ref.rows();

    std::vector<MergeOut> out(static_cast<size_t>(cores));
    // Baseline collectors (per-core triplet arrays + rowNnz).
    struct BaseOut
    {
        std::vector<Index> idxs;
        std::vector<Value> vals;
        std::vector<Index> rowNnz;
        Index rowBeg = 0;
    };
    std::vector<BaseOut> baseOut(static_cast<size_t>(cores));

    if (cfg.mode == Mode::Baseline) {
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(rows, cores, c);
            BaseOut &bo = baseOut[static_cast<size_t>(c)];
            bo.rowBeg = beg;
            // Reserve the exact output size so the collectors never
            // reallocate mid-run: their addresses enter the timing
            // stream, and a stable base keeps the canonical address
            // layout reproducible (see sim/addrspace.hpp).
            const auto outNnz = static_cast<size_t>(
                ref.rowBegin(end) - ref.rowBegin(beg));
            bo.idxs.reserve(outNnz);
            bo.vals.reserve(outNnz);
            bo.rowNnz.reserve(static_cast<size_t>(end - beg));
            h.addBaselineTrace(c, traceFn(parts, bo.idxs, bo.vals,
                                          bo.rowNnz, beg, end,
                                          h.simd()));
        }
    } else {
        for (int c = 0; c < cores; ++c) {
            const auto [beg, end] = partition(rows, cores, c);
            auto &src = h.addTmuProgram(c, buildSpkadd(parts, beg, end));
            MergeOut &mo = out[static_cast<size_t>(c)];
            const auto outNnz = static_cast<size_t>(
                ref.rowBegin(end) - ref.rowBegin(beg));
            mo.rows.reserve(outNnz);
            mo.idxs.reserve(outNnz);
            mo.vals.reserve(outNnz);
            src.setHandler(kCbRow, [&mo](const OutqRecord &rec,
                                         std::vector<MicroOp> &ops) {
                mo.curRow = rec.i64(0, 0);
                ops.push_back(MicroOp::iop());
            });
            src.setHandler(kCbCol, [&mo](const OutqRecord &rec,
                                         std::vector<MicroOp> &ops) {
                // Fig. 7: *out_ptr++ = vec_reduce(nnz_els).
                Value sum = 0.0;
                const auto n = rec.operands[1].size();
                for (size_t i = 0; i < n; ++i)
                    sum += rec.f64(1, static_cast<int>(i));
                mo.rows.push_back(mo.curRow);
                mo.idxs.push_back(rec.i64(0, 0));
                mo.vals.push_back(sum);
                ops.push_back(
                    MicroOp::flop(static_cast<std::uint16_t>(n)));
                ops.push_back(MicroOp::store(
                    addrOf(mo.vals.data(),
                           static_cast<Index>(mo.vals.size() - 1)),
                    8));
            });
            src.setHandler(kCbRowEnd,
                           [](const OutqRecord &,
                              std::vector<MicroOp> &ops) {
                               ops.push_back(MicroOp::iop());
                           });
        }
    }

    RunResult res = h.finish();

    if (cfg.mode == Mode::Baseline) {
        // Rebuild MergeOut from the baseline collectors for one shared
        // verification path.
        for (int c = 0; c < cores; ++c) {
            const BaseOut &bo = baseOut[static_cast<size_t>(c)];
            MergeOut &mo = out[static_cast<size_t>(c)];
            size_t q = 0;
            for (size_t lr = 0; lr < bo.rowNnz.size(); ++lr) {
                for (Index e = 0; e < bo.rowNnz[lr]; ++e, ++q) {
                    mo.rows.push_back(bo.rowBeg +
                                      static_cast<Index>(lr));
                    mo.idxs.push_back(bo.idxs[q]);
                    mo.vals.push_back(bo.vals[q]);
                }
            }
        }
    }
    res.verified = verifyMerged(out, ref);
    return res;
}

} // namespace

void
SpkaddWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    const tensor::CsrMatrix a =
        tensor::matrixInput(inputId).generate(scaleDiv);
    parts_ = tensor::splitCyclic(a, kInputs);
    ref_ = kernels::spkaddRef(parts_);
}

RunResult
SpkaddWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(!parts_.empty(), "prepare() was not called");
    return runKAdd(cfg, parts_, ref_, &kernels::traceSpkadd);
}

void
SpaddWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    const auto &in = tensor::matrixInput(inputId);
    a_ = in.generate(scaleDiv);
    // A structurally-similar second operand from a different seed.
    tensor::CsrGenConfig gen;
    gen.rows = a_.rows();
    gen.cols = a_.cols();
    gen.nnzPerRow = std::max(1.0, a_.nnzPerRow());
    gen.seed = 0xABCD ^ static_cast<std::uint64_t>(inputId[1]);
    b_ = tensor::randomCsr(gen);
    asDcsr_ = {tensor::csrToDcsr(a_), tensor::csrToDcsr(b_)};
    ref_ = kernels::spaddRef(a_, b_);
}

RunResult
SpaddWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.rows() > 0, "prepare() was not called");
    if (cfg.mode == Mode::Tmu)
        return runKAdd(cfg, asDcsr_, ref_, &kernels::traceSpkadd);

    RunHarness h(cfg);
    const int cores = h.cores();
    struct BaseOut
    {
        std::vector<Index> idxs;
        std::vector<Value> vals;
        std::vector<Index> rowNnz;
    };
    std::vector<BaseOut> out(static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = partition(a_.rows(), cores, c);
        BaseOut &bo = out[static_cast<size_t>(c)];
        h.addBaselineTrace(c, kernels::traceSpadd(a_, b_, bo.idxs,
                                                  bo.vals, bo.rowNnz,
                                                  beg, end, h.simd()));
    }
    RunResult res = h.finish();
    Index total = 0;
    for (const auto &bo : out)
        total += static_cast<Index>(bo.idxs.size());
    res.verified = total == ref_.nnz();
    return res;
}

} // namespace tmu::workloads
