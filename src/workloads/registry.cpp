#include "registry.hpp"

#include "common/log.hpp"
#include "workloads/wl_merge.hpp"
#include "workloads/wl_spmspm.hpp"
#include "workloads/wl_spmv.hpp"
#include "workloads/wl_tensor.hpp"

namespace tmu::workloads {

Expected<std::unique_ptr<Workload>>
tryMakeWorkload(const std::string &name)
{
    std::unique_ptr<Workload> wl;
    if (name == "SpMV")
        wl = std::make_unique<SpmvWorkload>();
    else if (name == "PR")
        wl = std::make_unique<PagerankWorkload>();
    else if (name == "SpMSpM")
        wl = std::make_unique<SpmspmWorkload>();
    else if (name == "TC")
        wl = std::make_unique<TricountWorkload>();
    else if (name == "SpKAdd")
        wl = std::make_unique<SpkaddWorkload>();
    else if (name == "SpAdd")
        wl = std::make_unique<SpaddWorkload>();
    else if (name == "MTTKRP_MP")
        wl = std::make_unique<MttkrpWorkload>(
            MttkrpWorkload::Variant::P1);
    else if (name == "MTTKRP_CP")
        wl = std::make_unique<MttkrpWorkload>(
            MttkrpWorkload::Variant::P2);
    else if (name == "SpTC")
        wl = std::make_unique<SptcWorkload>();
    else if (name == "CP-ALS")
        wl = std::make_unique<CpalsWorkload>();
    if (wl != nullptr)
        return wl;
    std::string known;
    for (const auto &w : allWorkloads())
        known += (known.empty() ? "" : ", ") + w;
    return TMU_ERR(Errc::UnknownName,
                   "unknown workload '%s' (known: %s)", name.c_str(),
                   known.c_str());
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    return tryMakeWorkload(name).valueOrFatal();
}

std::vector<std::string>
linearAlgebraWorkloads()
{
    return {"SpMV", "SpMSpM", "SpKAdd", "PR", "TC"};
}

std::vector<std::string>
tensorAlgebraWorkloads()
{
    return {"MTTKRP_MP", "MTTKRP_CP", "SpTC", "CP-ALS"};
}

std::vector<std::string>
allWorkloads()
{
    auto all = linearAlgebraWorkloads();
    for (auto &t : tensorAlgebraWorkloads())
        all.push_back(t);
    return all;
}

} // namespace tmu::workloads
