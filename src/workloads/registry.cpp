#include "registry.hpp"

#include "common/log.hpp"
#include "workloads/wl_einsum.hpp"
#include "workloads/wl_merge.hpp"
#include "workloads/wl_spmspm.hpp"
#include "workloads/wl_spmv.hpp"
#include "workloads/wl_tensor.hpp"

namespace tmu::workloads {

namespace {

/** Evaluated-set membership of a registry entry (Fig. 10 grouping). */
enum class Category {
    LinearAlgebra, //!< matrix inputs
    TensorAlgebra, //!< tensor inputs
    Unlisted,      //!< constructible by name, not part of the sweeps
};

/** One registry row: every consumer below derives from this table. */
struct RegistryEntry
{
    const char *name;
    Category category;
    std::unique_ptr<Workload> (*factory)();
};

constexpr RegistryEntry kRegistry[] = {
    {"SpMV", Category::LinearAlgebra,
     [] { return std::unique_ptr<Workload>(new SpmvWorkload()); }},
    {"SpMSpM", Category::LinearAlgebra,
     [] { return std::unique_ptr<Workload>(new SpmspmWorkload()); }},
    {"SpKAdd", Category::LinearAlgebra,
     [] { return std::unique_ptr<Workload>(new SpkaddWorkload()); }},
    {"PR", Category::LinearAlgebra,
     [] { return std::unique_ptr<Workload>(new PagerankWorkload()); }},
    {"TC", Category::LinearAlgebra,
     [] { return std::unique_ptr<Workload>(new TricountWorkload()); }},
    {"SpAdd", Category::Unlisted,
     [] { return std::unique_ptr<Workload>(new SpaddWorkload()); }},
    // Einsum-frontend workloads: compiled from a one-line expression,
    // no hand-written kernel code. Unlisted keeps the paper-figure
    // sweeps and committed perf baselines unchanged.
    {"SDDMM", Category::Unlisted,
     [] { return std::unique_ptr<Workload>(new SddmmWorkload()); }},
    {"SpMM", Category::Unlisted,
     [] { return std::unique_ptr<Workload>(new SpmmWorkload()); }},
    {"SpMM-SC", Category::Unlisted,
     [] {
         return std::unique_ptr<Workload>(new SpmmScatterWorkload());
     }},
    {"MTTKRP_MP", Category::TensorAlgebra,
     [] {
         return std::unique_ptr<Workload>(
             new MttkrpWorkload(MttkrpWorkload::Variant::P1));
     }},
    {"MTTKRP_CP", Category::TensorAlgebra,
     [] {
         return std::unique_ptr<Workload>(
             new MttkrpWorkload(MttkrpWorkload::Variant::P2));
     }},
    {"SpTC", Category::TensorAlgebra,
     [] { return std::unique_ptr<Workload>(new SptcWorkload()); }},
    {"CP-ALS", Category::TensorAlgebra,
     [] { return std::unique_ptr<Workload>(new CpalsWorkload()); }},
};

std::vector<std::string>
namesOf(Category category)
{
    std::vector<std::string> names;
    for (const RegistryEntry &e : kRegistry) {
        if (e.category == category)
            names.emplace_back(e.name);
    }
    return names;
}

} // namespace

Expected<std::unique_ptr<Workload>>
tryMakeWorkload(const std::string &name)
{
    for (const RegistryEntry &e : kRegistry) {
        if (name == e.name)
            return e.factory();
    }
    std::string known;
    for (const auto &w : allWorkloads())
        known += (known.empty() ? "" : ", ") + w;
    return TMU_ERR(Errc::UnknownName,
                   "unknown workload '%s' (known: %s)", name.c_str(),
                   known.c_str());
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    return tryMakeWorkload(name).valueOrFatal();
}

std::vector<std::string>
linearAlgebraWorkloads()
{
    return namesOf(Category::LinearAlgebra);
}

std::vector<std::string>
tensorAlgebraWorkloads()
{
    return namesOf(Category::TensorAlgebra);
}

std::vector<std::string>
allWorkloads()
{
    auto all = linearAlgebraWorkloads();
    for (auto &t : tensorAlgebraWorkloads())
        all.push_back(std::move(t));
    return all;
}

} // namespace tmu::workloads
