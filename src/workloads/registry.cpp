#include "registry.hpp"

#include "common/log.hpp"
#include "workloads/wl_merge.hpp"
#include "workloads/wl_spmspm.hpp"
#include "workloads/wl_spmv.hpp"
#include "workloads/wl_tensor.hpp"

namespace tmu::workloads {

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "SpMV")
        return std::make_unique<SpmvWorkload>();
    if (name == "PR")
        return std::make_unique<PagerankWorkload>();
    if (name == "SpMSpM")
        return std::make_unique<SpmspmWorkload>();
    if (name == "TC")
        return std::make_unique<TricountWorkload>();
    if (name == "SpKAdd")
        return std::make_unique<SpkaddWorkload>();
    if (name == "SpAdd")
        return std::make_unique<SpaddWorkload>();
    if (name == "MTTKRP_MP")
        return std::make_unique<MttkrpWorkload>(
            MttkrpWorkload::Variant::P1);
    if (name == "MTTKRP_CP")
        return std::make_unique<MttkrpWorkload>(
            MttkrpWorkload::Variant::P2);
    if (name == "SpTC")
        return std::make_unique<SptcWorkload>();
    if (name == "CP-ALS")
        return std::make_unique<CpalsWorkload>();
    TMU_FATAL("unknown workload '%s'", name.c_str());
}

std::vector<std::string>
linearAlgebraWorkloads()
{
    return {"SpMV", "SpMSpM", "SpKAdd", "PR", "TC"};
}

std::vector<std::string>
tensorAlgebraWorkloads()
{
    return {"MTTKRP_MP", "MTTKRP_CP", "SpTC", "CP-ALS"};
}

std::vector<std::string>
allWorkloads()
{
    auto all = linearAlgebraWorkloads();
    for (auto &t : tensorAlgebraWorkloads())
        all.push_back(t);
    return all;
}

} // namespace tmu::workloads
