#include "programs.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace tmu::workloads {

using engine::CallbackEvent;
using engine::ElemType;
using engine::GroupMode;
using engine::StreamRef;
using engine::TmuProgram;
using engine::TuRef;
using engine::kMskOperand;
using tensor::CooTensor;
using tensor::CsfTensor;
using tensor::CsrMatrix;
using tensor::DcsrMatrix;
using tensor::DenseMatrix;
using tensor::DenseVector;
using tensor::SparseVector;

TmuProgram
buildSpmvP1(const CsrMatrix &a, const DenseVector &b, int lanes,
            Index rowBeg, Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::BCast);
    const int l1 = p.addLayer(GroupMode::LockStep);

    const TuRef rows = p.dnsFbrT(l0, 0, rowBeg, rowEnd);
    const StreamRef ptrB = p.addMemStream(rows, a.ptrs().data(),
                                          ElemType::I64, {}, "row_ptbs");
    const StreamRef ptrE = p.addMemStream(rows, a.ptrs().data() + 1,
                                          ElemType::I64, {}, "row_ptes");
    p.setExpectedFiberLen(rows, std::max<Index>(1, rowEnd - rowBeg));

    std::vector<StreamRef> nnzVals, vecVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef cols = p.rngFbrT(l1, r, ptrB, ptrE, r, lanes);
        const StreamRef colIdxs = p.addMemStream(
            cols, a.idxs().data(), ElemType::I64, {}, "col_idxs");
        nnzVals.push_back(p.addMemStream(cols, a.vals().data(),
                                         ElemType::F64, {}, "nnz_vals"));
        vecVals.push_back(p.addMemStream(cols, b.data(), ElemType::F64,
                                         colIdxs, "vec_vals"));
        p.setExpectedFiberLen(
            cols, std::max<Index>(2, a.nnz() / std::max<Index>(
                                              1, a.rows() * lanes)));
    }
    const int nnzOp = p.addVecStream(l1, nnzVals, ElemType::F64, "nnz");
    const int vecOp = p.addVecStream(l1, vecVals, ElemType::F64, "vec");
    p.addCallback(l1, CallbackEvent::GroupIte, kCbRi, {nnzOp, vecOp});
    p.addCallback(l1, CallbackEvent::GroupEnd, kCbRe, {});
    return p;
}

TmuProgram
buildSpmvP0(const CsrMatrix &a, const DenseVector &b, int lanes,
            Index rowBeg, Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::LockStep);
    const int l1 = p.addLayer(GroupMode::LockStep);

    std::vector<StreamRef> nnzVals, vecVals, rowIdx;
    for (int r = 0; r < lanes; ++r) {
        // Lane r owns rows rowBeg+r, rowBeg+r+lanes, ...
        const TuRef rows =
            p.dnsFbrT(l0, r, rowBeg + r, rowEnd, lanes);
        const StreamRef ptrB = p.addMemStream(
            rows, a.ptrs().data(), ElemType::I64, {}, "row_ptbs");
        const StreamRef ptrE = p.addMemStream(
            rows, a.ptrs().data() + 1, ElemType::I64, {}, "row_ptes");
        rowIdx.push_back(p.iteStream(rows));

        const TuRef cols = p.rngFbrT(l1, r, ptrB, ptrE);
        const StreamRef colIdxs = p.addMemStream(
            cols, a.idxs().data(), ElemType::I64, {}, "col_idxs");
        nnzVals.push_back(p.addMemStream(cols, a.vals().data(),
                                         ElemType::F64, {}, "nnz_vals"));
        vecVals.push_back(p.addMemStream(cols, b.data(), ElemType::F64,
                                         colIdxs, "vec_vals"));
    }
    const int rowOp = p.addVecStream(l0, rowIdx, ElemType::I64, "rows");
    const int nnzOp = p.addVecStream(l1, nnzVals, ElemType::F64, "nnz");
    const int vecOp = p.addVecStream(l1, vecVals, ElemType::F64, "vec");
    p.addCallback(l0, CallbackEvent::GroupIte, kCbRow,
                  {rowOp, kMskOperand});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbRi,
                  {nnzOp, vecOp, kMskOperand});
    p.addCallback(l1, CallbackEvent::GroupEnd, kCbRe, {kMskOperand});
    return p;
}

TmuProgram
buildSpmspmP2(const CsrMatrix &a, const CsrMatrix &b, int lanes,
              Index rowBeg, Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::Single);
    const int l1 = p.addLayer(GroupMode::BCast);
    const int l2 = p.addLayer(GroupMode::LockStep);

    // i loop over A rows.
    const TuRef rows = p.dnsFbrT(l0, 0, rowBeg, rowEnd);
    const StreamRef aPtrB = p.addMemStream(rows, a.ptrs().data(),
                                           ElemType::I64, {}, "a_ptbs");
    const StreamRef aPtrE = p.addMemStream(
        rows, a.ptrs().data() + 1, ElemType::I64, {}, "a_ptes");
    p.setExpectedFiberLen(rows, std::max<Index>(1, rowEnd - rowBeg));

    // k loop over A row i; chained lookup of B's row pointers.
    const TuRef ks = p.rngFbrT(l1, 0, aPtrB, aPtrE);
    const StreamRef kIdxs =
        p.addMemStream(ks, a.idxs().data(), ElemType::I64, {}, "a_idxs");
    const StreamRef aVals =
        p.addMemStream(ks, a.vals().data(), ElemType::F64, {}, "a_vals");
    const StreamRef bPtrB = p.addMemStream(ks, b.ptrs().data(),
                                           ElemType::I64, kIdxs,
                                           "b_ptbs");
    const StreamRef bPtrE = p.addMemStream(ks, b.ptrs().data() + 1,
                                           ElemType::I64, kIdxs,
                                           "b_ptes");
    p.setExpectedFiberLen(ks, std::max<Index>(2, a.nnzPerRow()));

    // j loop over B row k, vectorized across lanes.
    std::vector<StreamRef> jIdxs, bVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef js = p.rngFbrT(l2, r, bPtrB, bPtrE, r, lanes);
        jIdxs.push_back(p.addMemStream(js, b.idxs().data(),
                                       ElemType::I64, {}, "b_idxs"));
        bVals.push_back(p.addMemStream(js, b.vals().data(),
                                       ElemType::F64, {}, "b_vals"));
        p.setExpectedFiberLen(
            js, std::max<Index>(2, b.nnzPerRow() / lanes));
    }
    const int aValOp =
        p.addVecStream(l1, {aVals}, ElemType::F64, "a_val");
    const int jOp = p.addVecStream(l2, jIdxs, ElemType::I64, "j");
    const int bValOp = p.addVecStream(l2, bVals, ElemType::F64, "b_val");

    p.addCallback(l1, CallbackEvent::GroupIte, kCbSetA, {aValOp});
    p.addCallback(l1, CallbackEvent::GroupEnd, kCbFlush, {});
    p.addCallback(l2, CallbackEvent::GroupIte, kCbAcc, {jOp, bValOp});
    return p;
}

TmuProgram
buildSpkadd(const std::vector<DcsrMatrix> &in, Index rowBeg,
            Index rowEnd)
{
    TMU_ASSERT(!in.empty() && in.size() >= 2);
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::DisjMrg);
    const int l1 = p.addLayer(GroupMode::DisjMrg);

    std::vector<StreamRef> rowKeys, colKeys, vals;
    for (int m = 0; m < static_cast<int>(in.size()); ++m) {
        const DcsrMatrix &mat = in[static_cast<size_t>(m)];
        // Stored-row span of this input inside [rowBeg, rowEnd).
        const auto beg = std::lower_bound(mat.rowIdxs().begin(),
                                          mat.rowIdxs().end(), rowBeg) -
                         mat.rowIdxs().begin();
        const auto end = std::lower_bound(mat.rowIdxs().begin(),
                                          mat.rowIdxs().end(), rowEnd) -
                         mat.rowIdxs().begin();

        const TuRef rows = p.dnsFbrT(l0, m, static_cast<Index>(beg),
                                     static_cast<Index>(end));
        const StreamRef rowIdx = p.addMemStream(
            rows, mat.rowIdxs().data(), ElemType::I64, {}, "row_idxs");
        const StreamRef ptrB = p.addMemStream(
            rows, mat.rowPtrs().data(), ElemType::I64, {}, "row_ptbs");
        const StreamRef ptrE = p.addMemStream(rows,
                                              mat.rowPtrs().data() + 1,
                                              ElemType::I64, {},
                                              "row_ptes");
        p.setMergeKey(rows, rowIdx);
        p.setExpectedFiberLen(
            rows, std::max<Index>(1, static_cast<Index>(end - beg)));
        rowKeys.push_back(rowIdx);

        const TuRef cols = p.rngFbrT(l1, m, ptrB, ptrE);
        const StreamRef colIdx = p.addMemStream(
            cols, mat.colIdxs().data(), ElemType::I64, {}, "col_idxs");
        vals.push_back(p.addMemStream(cols, mat.vals().data(),
                                      ElemType::F64, {}, "vals"));
        p.setMergeKey(cols, colIdx);
        colKeys.push_back(colIdx);
        p.setExpectedFiberLen(
            cols,
            std::max<Index>(2, mat.nnz() / std::max<Index>(
                                               1, mat.numStoredRows())));
    }
    const int rowOp = p.addVecStream(l0, rowKeys, ElemType::I64, "row");
    const int colOp = p.addVecStream(l1, colKeys, ElemType::I64, "col");
    const int valOp = p.addVecStream(l1, vals, ElemType::F64, "val");

    p.addCallback(l0, CallbackEvent::GroupIte, kCbRow, {rowOp});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbCol,
                  {colOp, valOp, kMskOperand});
    p.addCallback(l1, CallbackEvent::GroupEnd, kCbRowEnd, {});
    return p;
}

TmuProgram
buildTricount(const CsrMatrix &l, Index rowBeg, Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::Single);
    const int l1 = p.addLayer(GroupMode::BCast);
    const int l2 = p.addLayer(GroupMode::ConjMrg);

    // i loop over rows of the lower triangle.
    const TuRef rows = p.dnsFbrT(l0, 0, rowBeg, rowEnd);
    const StreamRef iPtrB = p.addMemStream(rows, l.ptrs().data(),
                                           ElemType::I64, {}, "l_ptbs");
    const StreamRef iPtrE = p.addMemStream(
        rows, l.ptrs().data() + 1, ElemType::I64, {}, "l_ptes");
    p.setExpectedFiberLen(rows, std::max<Index>(1, rowEnd - rowBeg));

    // k loop over row i's neighbours; forward row i's bounds rightward
    // and chase row k's bounds.
    const TuRef ks = p.rngFbrT(l1, 0, iPtrB, iPtrE);
    const StreamRef kIdxs =
        p.addMemStream(ks, l.idxs().data(), ElemType::I64, {}, "l_idxs");
    const StreamRef kPtrB = p.addMemStream(ks, l.ptrs().data(),
                                           ElemType::I64, kIdxs,
                                           "k_ptbs");
    const StreamRef kPtrE = p.addMemStream(ks, l.ptrs().data() + 1,
                                           ElemType::I64, kIdxs,
                                           "k_ptes");
    const StreamRef fwdIPtrB = p.addFwdStream(ks, iPtrB, "fwd_ptbs");
    const StreamRef fwdIPtrE = p.addFwdStream(ks, iPtrE, "fwd_ptes");
    p.setExpectedFiberLen(ks, std::max<Index>(2, l.nnzPerRow()));

    // Conjunctive merge of row i (lane 0) and row k (lane 1).
    const TuRef rowI = p.rngFbrT(l2, 0, fwdIPtrB, fwdIPtrE);
    const StreamRef keyI =
        p.addMemStream(rowI, l.idxs().data(), ElemType::I64, {}, "n_i");
    p.setMergeKey(rowI, keyI);
    const TuRef rowK = p.rngFbrT(l2, 1, kPtrB, kPtrE);
    const StreamRef keyK =
        p.addMemStream(rowK, l.idxs().data(), ElemType::I64, {}, "n_k");
    p.setMergeKey(rowK, keyK);
    p.setExpectedFiberLen(rowI, std::max<Index>(2, l.nnzPerRow()));
    p.setExpectedFiberLen(rowK, std::max<Index>(2, l.nnzPerRow()));

    p.addCallback(l2, CallbackEvent::GroupIte, kCbHit, {});
    return p;
}

namespace {

/** Shared L0 for the MTTKRP variants: per-lane COO nonzero streams. */
struct MttkrpLaneStreams
{
    StreamRef v;       //!< nonzero value
    StreamRef rowB;    //!< k * rank
    StreamRef negRowB; //!< -k * rank
    StreamRef deltaCB; //!< (l - k) * rank
    StreamRef zAddr;   //!< &z[i * rank]
};

MttkrpLaneStreams
addMttkrpNnzStreams(TmuProgram &p, TuRef nnz, const CooTensor &t,
                    const DenseMatrix &z, Index rank)
{
    MttkrpLaneStreams s;
    const StreamRef iIdx = p.addMemStream(nnz, t.idxs(0).data(),
                                          ElemType::I64, {}, "i");
    const StreamRef kIdx = p.addMemStream(nnz, t.idxs(1).data(),
                                          ElemType::I64, {}, "k");
    const StreamRef lIdx = p.addMemStream(nnz, t.idxs(2).data(),
                                          ElemType::I64, {}, "l");
    s.v = p.addMemStream(nnz, t.vals().data(), ElemType::F64, {}, "v");
    s.rowB = p.addLinStream(nnz, static_cast<double>(rank), 0.0, kIdx,
                            "rowB");
    s.negRowB = p.addLinStream(nnz, -static_cast<double>(rank), 0.0,
                               kIdx, "negRowB");
    s.deltaCB = p.addLinStream(nnz, static_cast<double>(rank), 0.0,
                               lIdx, "deltaCB", s.negRowB);
    const StreamRef rowZ = p.addLinStream(
        nnz, static_cast<double>(rank), 0.0, iIdx, "rowZ");
    s.zAddr = p.addLdrStream(nnz, z.data(), rowZ, "zAddr");
    return s;
}

} // namespace

TmuProgram
buildMttkrpP2(const CooTensor &t, const DenseMatrix &b,
              const DenseMatrix &c, const DenseMatrix &z, int lanes,
              Index nnzBeg, Index nnzEnd)
{
    TMU_ASSERT(t.order() == 3 && b.cols() == c.cols());
    const Index rank = b.cols();
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::BCast);
    const int l1 = p.addLayer(GroupMode::LockStep);

    const TuRef nnz = p.dnsFbrT(l0, 0, nnzBeg, nnzEnd);
    const MttkrpLaneStreams s = addMttkrpNnzStreams(p, nnz, t, z, rank);
    p.setExpectedFiberLen(nnz, std::max<Index>(1, nnzEnd - nnzBeg));

    std::vector<StreamRef> bVals, cVals, jVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef js = p.idxFbrT(l1, r, s.rowB, rank, r, lanes);
        const StreamRef fwdDelta = p.addFwdStream(js, s.deltaCB, "dCB");
        const StreamRef fwdNegB = p.addFwdStream(js, s.negRowB, "nB");
        bVals.push_back(
            p.addMemStream(js, b.data(), ElemType::F64, {}, "B"));
        cVals.push_back(p.addMemStream(js, c.data(), ElemType::F64, {},
                                       "C", fwdDelta));
        jVals.push_back(p.addLinStream(js, 1.0, 0.0, {}, "j", fwdNegB));
        p.setExpectedFiberLen(js, std::max<Index>(1, rank / lanes));
    }
    const int vOp = p.addVecStream(l0, {s.v}, ElemType::F64, "v");
    const int zOp = p.addVecStream(l0, {s.zAddr}, ElemType::I64, "z");
    const int jOp = p.addVecStream(l1, jVals, ElemType::I64, "j");
    const int bOp = p.addVecStream(l1, bVals, ElemType::F64, "B");
    const int cOp = p.addVecStream(l1, cVals, ElemType::F64, "C");

    p.addCallback(l0, CallbackEvent::GroupIte, kCbNnz, {vOp, zOp});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbJ, {jOp, bOp, cOp});
    return p;
}

TmuProgram
buildMttkrpP1(const CooTensor &t, const DenseMatrix &b,
              const DenseMatrix &c, const DenseMatrix &z, int lanes,
              Index nnzBeg, Index nnzEnd)
{
    TMU_ASSERT(t.order() == 3 && b.cols() == c.cols());
    const Index rank = b.cols();
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::LockStep);
    const int l1 = p.addLayer(GroupMode::LockStep);

    std::vector<StreamRef> vs, zs, bVals, cVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef nnz = p.dnsFbrT(l0, r, nnzBeg + r, nnzEnd, lanes);
        const MttkrpLaneStreams s =
            addMttkrpNnzStreams(p, nnz, t, z, rank);
        vs.push_back(s.v);
        zs.push_back(s.zAddr);
        p.setExpectedFiberLen(
            nnz, std::max<Index>(1, (nnzEnd - nnzBeg) / lanes));

        const TuRef js = p.idxFbrT(l1, r, s.rowB, rank);
        const StreamRef fwdDelta = p.addFwdStream(js, s.deltaCB, "dCB");
        bVals.push_back(
            p.addMemStream(js, b.data(), ElemType::F64, {}, "B"));
        cVals.push_back(p.addMemStream(js, c.data(), ElemType::F64, {},
                                       "C", fwdDelta));
        p.setExpectedFiberLen(js, rank);
    }
    const int vOp = p.addVecStream(l0, vs, ElemType::F64, "v");
    const int zOp = p.addVecStream(l0, zs, ElemType::I64, "z");
    const int bOp = p.addVecStream(l1, bVals, ElemType::F64, "B");
    const int cOp = p.addVecStream(l1, cVals, ElemType::F64, "C");

    p.addCallback(l0, CallbackEvent::GroupIte, kCbNnz,
                  {vOp, zOp, kMskOperand});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbJ,
                  {bOp, cOp, kMskOperand});
    return p;
}

TmuProgram
buildSptcSymbolic(const CsfTensor &a, const CsfTensor &b, Index rootBeg,
                  Index rootEnd)
{
    TMU_ASSERT(a.order() == 3 && b.order() == 3);
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::Single); // A roots (i)
    const int l1 = p.addLayer(GroupMode::BCast);  // A k nodes
    const int l2 = p.addLayer(GroupMode::ConjMrg); // l vs B roots
    const int l3 = p.addLayer(GroupMode::ConjMrg); // k vs B k-fiber
    const int l4 = p.addLayer(GroupMode::Single);  // B j fiber

    const TuRef roots = p.dnsFbrT(l0, 0, rootBeg, rootEnd);
    const StreamRef iCoord = p.addMemStream(roots, a.idxs(0).data(),
                                            ElemType::I64, {}, "a_i");
    const StreamRef aPtrB = p.addMemStream(roots, a.ptrs(0).data(),
                                           ElemType::I64, {}, "a_p0b");
    const StreamRef aPtrE = p.addMemStream(roots, a.ptrs(0).data() + 1,
                                           ElemType::I64, {}, "a_p0e");
    p.setExpectedFiberLen(roots,
                          std::max<Index>(1, rootEnd - rootBeg));

    const TuRef ks = p.rngFbrT(l1, 0, aPtrB, aPtrE);
    const StreamRef kCoord =
        p.addMemStream(ks, a.idxs(1).data(), ElemType::I64, {}, "a_k");
    const StreamRef kPtrB =
        p.addMemStream(ks, a.ptrs(1).data(), ElemType::I64, {}, "a_p1b");
    const StreamRef kPtrE = p.addMemStream(ks, a.ptrs(1).data() + 1,
                                           ElemType::I64, {}, "a_p1e");
    p.setExpectedFiberLen(ks, 4);

    // Lane 0: A's l fiber; lane 1: B's root (l) level.
    const TuRef aL = p.rngFbrT(l2, 0, kPtrB, kPtrE);
    const StreamRef aLCoord =
        p.addMemStream(aL, a.idxs(2).data(), ElemType::I64, {}, "a_l");
    const StreamRef fwdK = p.addFwdStream(aL, kCoord, "fwd_k");
    p.setMergeKey(aL, aLCoord);
    p.setExpectedFiberLen(aL, 4);

    const TuRef bRoots = p.dnsFbrT(l2, 1, 0, b.numNodes(0));
    const StreamRef bLCoord = p.addMemStream(bRoots, b.idxs(0).data(),
                                             ElemType::I64, {}, "b_l");
    const StreamRef bPtrB = p.addMemStream(bRoots, b.ptrs(0).data(),
                                           ElemType::I64, {}, "b_p0b");
    const StreamRef bPtrE = p.addMemStream(bRoots, b.ptrs(0).data() + 1,
                                           ElemType::I64, {}, "b_p0e");
    p.setMergeKey(bRoots, bLCoord);
    p.setExpectedFiberLen(bRoots, std::max<Index>(2, b.numNodes(0)));

    // Lane 0: the single k coordinate; lane 1: B's k fiber under l.
    const TuRef kOne = p.idxFbrT(l3, 0, fwdK, 1);
    p.setExpectedFiberLen(kOne, 1);
    const TuRef bKs = p.rngFbrT(l3, 1, bPtrB, bPtrE);
    const StreamRef bKCoord =
        p.addMemStream(bKs, b.idxs(1).data(), ElemType::I64, {}, "b_k");
    const StreamRef bKPtrB =
        p.addMemStream(bKs, b.ptrs(1).data(), ElemType::I64, {}, "b_p1b");
    const StreamRef bKPtrE = p.addMemStream(bKs, b.ptrs(1).data() + 1,
                                            ElemType::I64, {}, "b_p1e");
    p.setMergeKey(bKs, bKCoord);
    p.setExpectedFiberLen(bKs, 4);

    const TuRef js = p.rngFbrT(l4, 0, bKPtrB, bKPtrE);
    const StreamRef jCoord =
        p.addMemStream(js, b.idxs(2).data(), ElemType::I64, {}, "b_j");
    p.setExpectedFiberLen(js, 4);

    const int iOp = p.addVecStream(l0, {iCoord}, ElemType::I64, "i");
    const int jOp = p.addVecStream(l4, {jCoord}, ElemType::I64, "j");
    p.addCallback(l0, CallbackEvent::GroupIte, kCbRoot, {iOp});
    p.addCallback(l1, CallbackEvent::GroupEnd, kCbRootEnd, {});
    p.addCallback(l4, CallbackEvent::GroupIte, kCbJCoord, {jOp});
    return p;
}

TmuProgram
buildSpmspv(const CsrMatrix &a, const SparseVector &b, Index rowBeg,
            Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::BCast);
    const int l1 = p.addLayer(GroupMode::ConjMrg);

    const TuRef rows = p.dnsFbrT(l0, 0, rowBeg, rowEnd);
    const StreamRef ptrB = p.addMemStream(rows, a.ptrs().data(),
                                          ElemType::I64, {}, "row_ptbs");
    const StreamRef ptrE = p.addMemStream(rows, a.ptrs().data() + 1,
                                          ElemType::I64, {}, "row_ptes");
    p.setExpectedFiberLen(rows, std::max<Index>(1, rowEnd - rowBeg));

    const TuRef aCols = p.rngFbrT(l1, 0, ptrB, ptrE);
    const StreamRef aIdx = p.addMemStream(aCols, a.idxs().data(),
                                          ElemType::I64, {}, "a_idxs");
    const StreamRef aVal = p.addMemStream(aCols, a.vals().data(),
                                          ElemType::F64, {}, "a_vals");
    p.setMergeKey(aCols, aIdx);

    const TuRef bEnts = p.dnsFbrT(l1, 1, 0, b.nnz());
    const StreamRef bIdx = p.addMemStream(bEnts, b.idxs().data(),
                                          ElemType::I64, {}, "b_idxs");
    const StreamRef bVal = p.addMemStream(bEnts, b.vals().data(),
                                          ElemType::F64, {}, "b_vals");
    p.setMergeKey(bEnts, bIdx);

    const int valOp =
        p.addVecStream(l1, {aVal, bVal}, ElemType::F64, "vals");
    p.addCallback(l1, CallbackEvent::GroupIte, kCbRi, {valOp});
    p.addCallback(l1, CallbackEvent::GroupEnd, kCbRe, {});
    return p;
}

TmuProgram
buildSpmmP1(const CsrMatrix &a, const DenseMatrix &b, int lanes,
            Index rowBeg, Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::Single);
    const int l1 = p.addLayer(GroupMode::BCast);
    const int l2 = p.addLayer(GroupMode::LockStep);

    const TuRef rows = p.dnsFbrT(l0, 0, rowBeg, rowEnd);
    const StreamRef ptrB = p.addMemStream(rows, a.ptrs().data(),
                                          ElemType::I64, {}, "row_ptbs");
    const StreamRef ptrE = p.addMemStream(rows, a.ptrs().data() + 1,
                                          ElemType::I64, {}, "row_ptes");

    const TuRef ks = p.rngFbrT(l1, 0, ptrB, ptrE);
    const StreamRef kIdx =
        p.addMemStream(ks, a.idxs().data(), ElemType::I64, {}, "a_idxs");
    const StreamRef aVal =
        p.addMemStream(ks, a.vals().data(), ElemType::F64, {}, "a_vals");
    const StreamRef rowB = p.addLinStream(
        ks, static_cast<double>(b.cols()), 0.0, kIdx, "rowB");

    std::vector<StreamRef> bVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef js = p.idxFbrT(l2, r, rowB, b.cols(), r, lanes);
        bVals.push_back(
            p.addMemStream(js, b.data(), ElemType::F64, {}, "B"));
    }
    const int iOp =
        p.addVecStream(l0, {p.iteStream(rows)}, ElemType::I64, "i");
    const int aOp = p.addVecStream(l1, {aVal}, ElemType::F64, "a");
    const int bOp = p.addVecStream(l2, bVals, ElemType::F64, "B");
    p.addCallback(l0, CallbackEvent::GroupIte, kCbRow, {iOp});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbSetA, {aOp});
    p.addCallback(l2, CallbackEvent::GroupIte, kCbAcc, {bOp});
    return p;
}

TmuProgram
buildSpmmP0(const CsrMatrix &a, const DenseMatrix &b, int lanes,
            Index rowBeg, Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::LockStep);
    const int l1 = p.addLayer(GroupMode::LockStep);
    const int l2 = p.addLayer(GroupMode::LockStep);

    std::vector<StreamRef> rowIdx, aVals, bVals, jVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef rows = p.dnsFbrT(l0, r, rowBeg + r, rowEnd, lanes);
        const StreamRef ptrB = p.addMemStream(
            rows, a.ptrs().data(), ElemType::I64, {}, "row_ptbs");
        const StreamRef ptrE = p.addMemStream(
            rows, a.ptrs().data() + 1, ElemType::I64, {}, "row_ptes");
        rowIdx.push_back(p.iteStream(rows));

        const TuRef ks = p.rngFbrT(l1, r, ptrB, ptrE);
        const StreamRef kIdx = p.addMemStream(ks, a.idxs().data(),
                                              ElemType::I64, {},
                                              "a_idxs");
        aVals.push_back(p.addMemStream(ks, a.vals().data(),
                                       ElemType::F64, {}, "a_vals"));
        const StreamRef rowB = p.addLinStream(
            ks, static_cast<double>(b.cols()), 0.0, kIdx, "rowB");
        const StreamRef negRowB = p.addLinStream(
            ks, -static_cast<double>(b.cols()), 0.0, kIdx, "negRowB");

        const TuRef js = p.idxFbrT(l2, r, rowB, b.cols());
        bVals.push_back(
            p.addMemStream(js, b.data(), ElemType::F64, {}, "B"));
        const StreamRef fwdNeg = p.addFwdStream(js, negRowB, "nB");
        jVals.push_back(p.addLinStream(js, 1.0, 0.0, {}, "j", fwdNeg));
    }
    const int iOp = p.addVecStream(l0, rowIdx, ElemType::I64, "i");
    const int aOp = p.addVecStream(l1, aVals, ElemType::F64, "a");
    const int jOp = p.addVecStream(l2, jVals, ElemType::I64, "j");
    const int bOp = p.addVecStream(l2, bVals, ElemType::F64, "B");
    p.addCallback(l0, CallbackEvent::GroupIte, kCbRow,
                  {iOp, kMskOperand});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbSetA,
                  {aOp, kMskOperand});
    p.addCallback(l2, CallbackEvent::GroupIte, kCbAcc,
                  {jOp, bOp, kMskOperand});
    return p;
}

TmuProgram
buildSpmspmP0(const CsrMatrix &a, const CsrMatrix &b, int lanes,
              Index rowBeg, Index rowEnd)
{
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::LockStep);
    const int l1 = p.addLayer(GroupMode::LockStep);
    const int l2 = p.addLayer(GroupMode::LockStep);

    std::vector<StreamRef> rowIdx, aVals, bVals, jIdxs;
    for (int r = 0; r < lanes; ++r) {
        const TuRef rows = p.dnsFbrT(l0, r, rowBeg + r, rowEnd, lanes);
        const StreamRef ptrB = p.addMemStream(
            rows, a.ptrs().data(), ElemType::I64, {}, "row_ptbs");
        const StreamRef ptrE = p.addMemStream(
            rows, a.ptrs().data() + 1, ElemType::I64, {}, "row_ptes");
        rowIdx.push_back(p.iteStream(rows));

        const TuRef ks = p.rngFbrT(l1, r, ptrB, ptrE);
        const StreamRef kIdx = p.addMemStream(ks, a.idxs().data(),
                                              ElemType::I64, {},
                                              "a_idxs");
        aVals.push_back(p.addMemStream(ks, a.vals().data(),
                                       ElemType::F64, {}, "a_vals"));
        const StreamRef bPtrB = p.addMemStream(
            ks, b.ptrs().data(), ElemType::I64, kIdx, "b_ptbs");
        const StreamRef bPtrE = p.addMemStream(
            ks, b.ptrs().data() + 1, ElemType::I64, kIdx, "b_ptes");

        const TuRef js = p.rngFbrT(l2, r, bPtrB, bPtrE);
        jIdxs.push_back(p.addMemStream(js, b.idxs().data(),
                                       ElemType::I64, {}, "b_idxs"));
        bVals.push_back(p.addMemStream(js, b.vals().data(),
                                       ElemType::F64, {}, "b_vals"));
    }
    const int iOp = p.addVecStream(l0, rowIdx, ElemType::I64, "i");
    const int aOp = p.addVecStream(l1, aVals, ElemType::F64, "a");
    const int jOp = p.addVecStream(l2, jIdxs, ElemType::I64, "j");
    const int bOp = p.addVecStream(l2, bVals, ElemType::F64, "b");
    p.addCallback(l0, CallbackEvent::GroupIte, kCbRow,
                  {iOp, kMskOperand});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbSetA,
                  {aOp, kMskOperand});
    p.addCallback(l2, CallbackEvent::GroupIte, kCbAcc,
                  {jOp, bOp, kMskOperand});
    return p;
}

TmuProgram
buildSpttv(const CsfTensor &a, const DenseVector &b, int lanes,
           Index rootBeg, Index rootEnd)
{
    TMU_ASSERT(a.order() == 3);
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::Single);
    const int l1 = p.addLayer(GroupMode::BCast);
    const int l2 = p.addLayer(GroupMode::LockStep);

    const TuRef roots = p.dnsFbrT(l0, 0, rootBeg, rootEnd);
    const StreamRef iCoord = p.addMemStream(roots, a.idxs(0).data(),
                                            ElemType::I64, {}, "i");
    const StreamRef p0b = p.addMemStream(roots, a.ptrs(0).data(),
                                         ElemType::I64, {}, "p0b");
    const StreamRef p0e = p.addMemStream(roots, a.ptrs(0).data() + 1,
                                         ElemType::I64, {}, "p0e");

    const TuRef js = p.rngFbrT(l1, 0, p0b, p0e);
    const StreamRef jCoord =
        p.addMemStream(js, a.idxs(1).data(), ElemType::I64, {}, "j");
    const StreamRef p1b =
        p.addMemStream(js, a.ptrs(1).data(), ElemType::I64, {}, "p1b");
    const StreamRef p1e = p.addMemStream(js, a.ptrs(1).data() + 1,
                                         ElemType::I64, {}, "p1e");

    std::vector<StreamRef> aVals, bVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef ks = p.rngFbrT(l2, r, p1b, p1e, r, lanes);
        const StreamRef kCoord =
            p.addMemStream(ks, a.idxs(2).data(), ElemType::I64, {}, "k");
        aVals.push_back(p.addMemStream(ks, a.vals().data(),
                                       ElemType::F64, {}, "a_vals"));
        bVals.push_back(p.addMemStream(ks, b.data(), ElemType::F64,
                                       kCoord, "b_vals"));
    }
    const int iOp = p.addVecStream(l0, {iCoord}, ElemType::I64, "i");
    const int jOp = p.addVecStream(l1, {jCoord}, ElemType::I64, "j");
    const int aOp = p.addVecStream(l2, aVals, ElemType::F64, "a");
    const int bOp = p.addVecStream(l2, bVals, ElemType::F64, "b");
    p.addCallback(l0, CallbackEvent::GroupIte, kCbRoot, {iOp});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbRow, {jOp});
    p.addCallback(l2, CallbackEvent::GroupIte, kCbRi, {aOp, bOp});
    p.addCallback(l2, CallbackEvent::GroupEnd, kCbRe, {});
    return p;
}

TmuProgram
buildSpttm(const CsfTensor &a, const DenseMatrix &b, int lanes,
           Index rootBeg, Index rootEnd)
{
    TMU_ASSERT(a.order() == 3 && a.dim(2) == b.rows());
    TmuProgram p;
    const int l0 = p.addLayer(GroupMode::Single);
    const int l1 = p.addLayer(GroupMode::Single);
    const int l2 = p.addLayer(GroupMode::BCast);
    const int l3 = p.addLayer(GroupMode::LockStep);

    const TuRef roots = p.dnsFbrT(l0, 0, rootBeg, rootEnd);
    const StreamRef iCoord = p.addMemStream(roots, a.idxs(0).data(),
                                            ElemType::I64, {}, "i");
    const StreamRef p0b = p.addMemStream(roots, a.ptrs(0).data(),
                                         ElemType::I64, {}, "p0b");
    const StreamRef p0e = p.addMemStream(roots, a.ptrs(0).data() + 1,
                                         ElemType::I64, {}, "p0e");

    const TuRef js = p.rngFbrT(l1, 0, p0b, p0e);
    const StreamRef jCoord =
        p.addMemStream(js, a.idxs(1).data(), ElemType::I64, {}, "j");
    const StreamRef p1b =
        p.addMemStream(js, a.ptrs(1).data(), ElemType::I64, {}, "p1b");
    const StreamRef p1e = p.addMemStream(js, a.ptrs(1).data() + 1,
                                         ElemType::I64, {}, "p1e");

    const TuRef ks = p.rngFbrT(l2, 0, p1b, p1e);
    const StreamRef kCoord =
        p.addMemStream(ks, a.idxs(2).data(), ElemType::I64, {}, "k");
    const StreamRef aVal =
        p.addMemStream(ks, a.vals().data(), ElemType::F64, {}, "a_val");
    const StreamRef rowB = p.addLinStream(
        ks, static_cast<double>(b.cols()), 0.0, kCoord, "rowB");

    std::vector<StreamRef> bVals;
    for (int r = 0; r < lanes; ++r) {
        const TuRef ls = p.idxFbrT(l3, r, rowB, b.cols(), r, lanes);
        bVals.push_back(
            p.addMemStream(ls, b.data(), ElemType::F64, {}, "B"));
    }
    const int iOp = p.addVecStream(l0, {iCoord}, ElemType::I64, "i");
    const int jOp = p.addVecStream(l1, {jCoord}, ElemType::I64, "j");
    const int aOp = p.addVecStream(l2, {aVal}, ElemType::F64, "a");
    const int bOp = p.addVecStream(l3, bVals, ElemType::F64, "B");
    p.addCallback(l0, CallbackEvent::GroupIte, kCbRoot, {iOp});
    p.addCallback(l1, CallbackEvent::GroupIte, kCbRow, {jOp});
    p.addCallback(l1, CallbackEvent::GroupEnd, kCbFlush, {});
    p.addCallback(l2, CallbackEvent::GroupIte, kCbSetA, {aOp});
    p.addCallback(l3, CallbackEvent::GroupIte, kCbAcc, {bOp});
    return p;
}

} // namespace tmu::workloads
