#include "wl_tensor.hpp"

#include <cmath>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "kernels/mttkrp.hpp"
#include "kernels/smallsolve.hpp"
#include "kernels/sptc.hpp"
#include "plan/frontend/frontend.hpp"
#include "plan/lower.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tensor/suite.hpp"
#include "tmu/outq.hpp"
#include "workloads/programs.hpp"

namespace tmu::workloads {

using engine::OutqRecord;
using kernels::CpFactors;
using sim::MicroOp;
using sim::addrOf;
using tensor::CooTensor;
using tensor::DenseMatrix;

namespace {

/** Accumulate one phase's SimResult into a whole-run aggregate. */
void
accumulate(sim::SimResult &into, const sim::SimResult &phase)
{
    into.cycles += phase.cycles;
    into.total.cycles += phase.total.cycles;
    into.total.commitCycles += phase.total.commitCycles;
    into.total.frontendStallCycles += phase.total.frontendStallCycles;
    into.total.backendStallCycles += phase.total.backendStallCycles;
    into.total.supplyWaitCycles += phase.total.supplyWaitCycles;
    into.total.retiredOps += phase.total.retiredOps;
    into.total.loads += phase.total.loads;
    into.total.stores += phase.total.stores;
    into.total.flops += phase.total.flops;
    into.total.branches += phase.total.branches;
    into.total.mispredicts += phase.total.mispredicts;
    into.total.loadLatencySum += phase.total.loadLatencySum;
    into.dram.readBytes += phase.dram.readBytes;
    into.dram.writeBytes += phase.dram.writeBytes;
    into.dram.accesses += phase.dram.accesses;
    into.dram.rowHits += phase.dram.rowHits;

    // Recompute the rate summaries over the combined phases.
    if (into.cycles > 0) {
        const double seconds = static_cast<double>(into.cycles) /
                               (sim::SystemConfig{}.mem.coreGHz * 1e9);
        into.gflops =
            static_cast<double>(into.total.flops) / seconds / 1e9;
        into.achievedGBs =
            (static_cast<double>(into.dram.readBytes) +
             static_cast<double>(into.dram.writeBytes)) /
            seconds / 1e9;
    }
}

/** Merge a phase RunResult into the aggregate. */
void
accumulateRun(RunResult &into, const RunResult &phase)
{
    accumulate(into.sim, phase.sim);
    mergeCounterSnapshots(into.stats, phase.stats);
    into.tmuRequests += phase.tmuRequests;
    into.tmuElements += phase.tmuElements;
    if (phase.rwRatio > 0.0) {
        into.rwRatio = into.rwRatio > 0.0
                           ? 0.5 * (into.rwRatio + phase.rwRatio)
                           : phase.rwRatio;
    }
}

/**
 * One MTTKRP execution over [0, t.nnz()) split across cores; each core
 * accumulates into its own z copy (GenTen-style private accumulators).
 */
RunResult
runMttkrpOnce(const RunConfig &cfg, const CooTensor &t,
              const DenseMatrix &b, const DenseMatrix &c,
              std::vector<DenseMatrix> &zPerCore, bool p1)
{
    RunHarness h(cfg);
    const int cores = h.cores();
    TMU_ASSERT(static_cast<int>(zPerCore.size()) == cores);

    std::vector<plan::PlanState> st(static_cast<size_t>(cores));

    // COO element spans are already element-balanced; the strategies
    // that weight by prefix sums degrade to the same equal split.
    const Partition part = h.makeRunPartition(t.nnz(), nullptr);
    for (int core = 0; core < cores; ++core) {
        const auto [beg, end] = part.range(core);
        DenseMatrix &z = zPerCore[static_cast<size_t>(core)];
        plan::frontend::EinsumBindings fb;
        fb.coo["A"] = &t;
        fb.mat["B"] = &b;
        fb.mat["C"] = &c;
        fb.outMat = &z;
        plan::frontend::CompileOptions fo;
        fo.lanes = cfg.programLanes;
        fo.beg = beg;
        fo.end = end;
        fo.variant = p1 ? plan::Variant::P1 : plan::Variant::P2;
        const plan::PlanSpec ps =
            plan::frontend::compileEinsum(
                "Z(i,j) = A(i,k,l; coo) * B(k,j; dense) * "
                "C(l,j; dense)",
                fb, fo)
                .valueOrFatal();

        if (cfg.mode == Mode::Baseline) {
            h.addBaselineTrace(core,
                               plan::lowerTrace(ps, {}, h.simd()));
            continue;
        }

        auto &src = h.addTmuProgram(core, plan::lowerProgram(ps));
        plan::PlanState &s = st[static_cast<size_t>(core)];
        plan::initPlanState(ps, s);
        plan::bindHandlers(ps, src, s);
    }
    return h.finish();
}

/** Sum per-core accumulators and compare against a reference. */
bool
verifyAccumulated(const std::vector<DenseMatrix> &zPerCore,
                  const DenseMatrix &ref)
{
    for (Index i = 0; i < ref.rows(); ++i) {
        for (Index j = 0; j < ref.cols(); ++j) {
            Value sum = 0.0;
            for (const auto &z : zPerCore)
                sum += z(i, j);
            if (std::abs(sum - ref(i, j)) >
                1e-6 * (1.0 + std::abs(ref(i, j))))
                return false;
        }
    }
    return true;
}

std::vector<DenseMatrix>
makeAccumulators(int cores, Index rows, Index rank)
{
    std::vector<DenseMatrix> z;
    z.reserve(static_cast<size_t>(cores));
    for (int c = 0; c < cores; ++c)
        z.emplace_back(rows, rank, 0.0);
    return z;
}

} // namespace

void
MttkrpWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    t_ = tensor::tensorInput(inputId).generate(scaleDiv);
    Rng rng(23);
    b_ = DenseMatrix(t_.dim(1), kRank);
    c_ = DenseMatrix(t_.dim(2), kRank);
    for (Index i = 0; i < b_.rows(); ++i)
        for (Index j = 0; j < kRank; ++j)
            b_(i, j) = rng.nextValue(0.1, 1.0);
    for (Index i = 0; i < c_.rows(); ++i)
        for (Index j = 0; j < kRank; ++j)
            c_(i, j) = rng.nextValue(0.1, 1.0);
    ref_ = kernels::mttkrpRef(t_, b_, c_, 0);
}

RunResult
MttkrpWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(t_.nnz() > 0, "prepare() was not called");
    auto z = makeAccumulators(cfg.system.cores, t_.dim(0), kRank);
    RunResult res = runMttkrpOnce(cfg, t_, b_, c_, z,
                                  variant_ == Variant::P1);
    res.verified = verifyAccumulated(z, ref_);
    return res;
}

void
SptcWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    // SpTC contracts the (k, l) modes; the merge-based hardware lookup
    // co-iterates A's l fibers against B's root level, so the
    // surrogate keeps the contracted-mode extents proportionally small
    // (as in Liu et al.'s evaluated contractions) while the output
    // modes carry the nnz. Scale harder than MTTKRP: the symbolic
    // phase visits every (A leaf x B subtree) pairing.
    const tensor::TensorInput &in = tensor::tensorInput(inputId);
    const Index nnz = std::max<Index>(2048, in.paperNnz / (scaleDiv * 8));
    const Index dimI = std::max<Index>(96, in.paperDims[0] / scaleDiv);
    const Index dimK = 24; // contracted
    const Index dimL = 48; // contracted
    const CooTensor ca = tensor::randomCooTensor(
        {dimI, dimK, dimL}, nnz, in.modeSkew,
        0xA11CE ^ static_cast<std::uint64_t>(inputId[1]));
    a_ = tensor::cooToCsf(ca);
    const CooTensor cb = tensor::randomCooTensor(
        {dimL, dimK, std::max<Index>(96, dimI / 2)}, nnz, 0.0, 0xB0B);
    b_ = tensor::cooToCsf(cb);
    ref_ = kernels::sptcSymbolicRowsRef(a_, b_);
}

RunResult
SptcWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(a_.nnz() > 0, "prepare() was not called");
    RunHarness h(cfg);
    const int cores = h.cores();
    const Index roots = a_.numNodes(0);

    struct CoreState
    {
        std::vector<std::uint8_t> seen;
        std::vector<Index> touched;
        std::vector<Index> counts;
    };
    std::vector<CoreState> st(static_cast<size_t>(cores));
    std::vector<std::vector<Index>> baseCounts(
        static_cast<size_t>(cores));

    // Weight root spans by their child counts (CSF level-0 pointers).
    const Partition part =
        h.makeRunPartition(roots, a_.ptrs(0).data());
    for (int c = 0; c < cores; ++c) {
        const auto [beg, end] = part.range(c);
        if (cfg.mode == Mode::Baseline) {
            auto &counts = baseCounts[static_cast<size_t>(c)];
            counts.assign(static_cast<size_t>(roots), 0);
            h.addBaselineTrace(
                c, kernels::traceSptcSymbolic(a_, b_, counts, beg, end,
                                              h.simd()));
            continue;
        }
        auto &src =
            h.addTmuProgram(c, buildSptcSymbolic(a_, b_, beg, end));
        CoreState &s = st[static_cast<size_t>(c)];
        s.seen.assign(static_cast<size_t>(b_.dim(2)), 0);

        src.setHandler(kCbRoot, [&s](const OutqRecord &,
                                     std::vector<MicroOp> &ops) {
            ops.push_back(MicroOp::iop());
        });
        src.setHandler(kCbJCoord, [&s](const OutqRecord &rec,
                                       std::vector<MicroOp> &ops) {
            const auto j = static_cast<size_t>(rec.i64(0, 0));
            // Bitmap membership update on the core.
            ops.push_back(MicroOp::load(
                sim::addrOf(s.seen.data(), static_cast<Index>(j)), 1));
            if (!s.seen[j]) {
                s.seen[j] = 1;
                s.touched.push_back(static_cast<Index>(j));
                ops.push_back(MicroOp::store(
                    sim::addrOf(s.seen.data(), static_cast<Index>(j)), 1));
            }
            ops.push_back(MicroOp::iop());
        });
        src.setHandler(kCbRootEnd, [&s](const OutqRecord &,
                                        std::vector<MicroOp> &ops) {
            s.counts.push_back(static_cast<Index>(s.touched.size()));
            for (const Index j : s.touched) {
                s.seen[static_cast<size_t>(j)] = 0;
                ops.push_back(MicroOp::store(
                    sim::addrOf(s.seen.data(), static_cast<Index>(j)), 1));
            }
            s.touched.clear();
        });
    }

    RunResult res = h.finish();
    res.verified = true;
    for (int c = 0; c < cores && res.verified; ++c) {
        const auto [beg, end] = part.range(c);
        for (Index r = beg; r < end; ++r) {
            const Index want = ref_[static_cast<size_t>(r)];
            const Index got =
                cfg.mode == Mode::Baseline
                    ? baseCounts[static_cast<size_t>(c)]
                                [static_cast<size_t>(r)]
                    : st[static_cast<size_t>(c)]
                          .counts[static_cast<size_t>(r - beg)];
            if (got != want) {
                res.verified = false;
                break;
            }
        }
    }
    return res;
}

void
CpalsWorkload::prepare(const std::string &inputId, Index scaleDiv)
{
    t_ = tensor::tensorInput(inputId).generate(scaleDiv * 2);
    cfg_.rank = 16;
    cfg_.iterations = 1;
    init_ = kernels::cpalsInit(t_, cfg_);
    ref_ = kernels::cpalsRef(t_, cfg_);
}

RunResult
CpalsWorkload::run(const RunConfig &cfg)
{
    TMU_ASSERT(t_.nnz() > 0, "prepare() was not called");
    const Index rank = cfg_.rank;
    CpFactors f = init_;
    RunResult total;

    // One ALS sweep: per mode, an MTTKRP phase (simulated) plus the
    // dense gram/solve phase (simulated as compute on the cores; the
    // numeric update itself runs host-side, exactly).
    for (int mode = 0; mode < 3; ++mode) {
        const int m1 = mode == 0 ? 1 : 0;
        const int m2 = mode == 2 ? 1 : 2;

        // Re-sort the tensor so the output mode is mode 0 (the
        // Phipps-Kolda permutation optimization).
        CooTensor pt({t_.dim(mode), t_.dim(m1), t_.dim(m2)});
        for (Index p = 0; p < t_.nnz(); ++p) {
            pt.push({t_.idx(mode, p), t_.idx(m1, p), t_.idx(m2, p)},
                    t_.val(p));
        }
        pt.sortAndCombine();

        auto z = makeAccumulators(cfg.system.cores, t_.dim(mode), rank);
        accumulateRun(
            total,
            runMttkrpOnce(cfg, pt, f[static_cast<size_t>(m1)],
                          f[static_cast<size_t>(m2)], z, true));

        // Dense phase: gram + hadamard + Cholesky solves, partitioned
        // over the factor rows (always executed by the cores).
        {
            RunConfig denseCfg = cfg;
            denseCfg.mode = Mode::Baseline;
            RunHarness h(denseCfg);
            const Partition densePart =
                h.makeRunPartition(t_.dim(mode), nullptr);
            for (int c = 0; c < cfg.system.cores; ++c) {
                const auto [beg, end] = densePart.range(c);
                h.addBaselineTrace(
                    c, kernels::traceCpalsDense(rank, end - beg,
                                                h.simd()));
            }
            accumulateRun(total, h.finish());
        }

        // Exact numeric update of the factor.
        DenseMatrix m(t_.dim(mode), rank, 0.0);
        for (const auto &zc : z) {
            for (Index i = 0; i < m.rows(); ++i)
                for (Index j = 0; j < rank; ++j)
                    m(i, j) += zc(i, j);
        }
        DenseMatrix g = kernels::gramMatrix(f[static_cast<size_t>(m1)]);
        kernels::hadamardInPlace(
            g, kernels::gramMatrix(f[static_cast<size_t>(m2)]));
        kernels::choleskySolveRows(g, m);
        f[static_cast<size_t>(mode)] = std::move(m);
    }

    total.verified = true;
    for (int mode = 0; mode < 3 && total.verified; ++mode) {
        const auto &got = f[static_cast<size_t>(mode)];
        const auto &want = ref_[static_cast<size_t>(mode)];
        for (Index i = 0; i < got.rows() && total.verified; ++i) {
            for (Index j = 0; j < got.cols(); ++j) {
                if (std::abs(got(i, j) - want(i, j)) >
                    1e-5 * (1.0 + std::abs(want(i, j)))) {
                    total.verified = false;
                    break;
                }
            }
        }
    }
    return total;
}

} // namespace tmu::workloads
