#include "table.hpp"

#include <algorithm>
#include <cstdio>

#include "common/log.hpp"

namespace tmu {

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    if (!header_.empty()) {
        TMU_ASSERT(cells.size() == header_.size(),
                   "row width %zu != header width %zu",
                   cells.size(), header_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int prec)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

std::string
TextTable::render() const
{
    // Compute per-column widths across header and rows.
    std::vector<std::size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header_.empty())
        grow(header_);
    for (const auto &r : rows_)
        grow(r);

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i)
                line += "  ";
            line += cells[i];
            line.append(widths[i] - cells[i].size(), ' ');
        }
        // Trim trailing padding.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!title_.empty()) {
        out += "== " + title_ + " ==\n";
    }
    if (!header_.empty()) {
        const std::string h = renderRow(header_);
        out += h;
        out.append(std::max<std::size_t>(h.size(), 2) - 1, '-');
        out += "\n";
    }
    for (const auto &r : rows_)
        out += renderRow(r);
    return out;
}

void
TextTable::print() const
{
    std::fputs(render().c_str(), stdout);
}

} // namespace tmu
