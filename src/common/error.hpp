/**
 * @file
 * Recoverable error model: TmuError + Expected<T>.
 *
 * TMU_FATAL kills the process, which is the right call for internal
 * invariant violations but the wrong one for anything derived from
 * user input (a malformed .mtx file, an unknown workload name, a bad
 * fault spec). Input-facing code paths return Expected<T> instead so
 * callers such as tmu_run can skip the bad input, report the error in
 * the stats export, and keep going — partial results instead of
 * process death.
 *
 * TmuError carries an error code, a printf-formatted message and a
 * chain of context frames ("while reading 'x.mtx'") accumulated as the
 * error propagates outward, newest frame last.
 */

#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/log.hpp"

namespace tmu {

/** Error category of a recoverable failure. */
enum class Errc : int {
    ParseError = 1, //!< malformed text (header, token, spec syntax)
    IoError,        //!< file missing/unreadable
    Truncated,      //!< stream ended before the promised data
    OutOfRange,     //!< value outside its valid domain
    Overflow,       //!< numeric value does not fit its type
    UnknownName,    //!< lookup miss (workload, input, preset)
    ConfigError,    //!< inconsistent/unusable configuration
    Corrupted,      //!< payload failed an integrity check
};

/** Stable short name of an error code ("ParseError"). */
inline const char *
errcName(Errc c)
{
    switch (c) {
      case Errc::ParseError:  return "ParseError";
      case Errc::IoError:     return "IoError";
      case Errc::Truncated:   return "Truncated";
      case Errc::OutOfRange:  return "OutOfRange";
      case Errc::Overflow:    return "Overflow";
      case Errc::UnknownName: return "UnknownName";
      case Errc::ConfigError: return "ConfigError";
      case Errc::Corrupted:   return "Corrupted";
    }
    return "Error";
}

/** One recoverable error: code + message + context chain. */
class TmuError
{
  public:
    TmuError(Errc code, std::string message)
        : code_(code), message_(std::move(message))
    {
    }

    Errc code() const { return code_; }
    const std::string &message() const { return message_; }
    const std::vector<std::string> &contexts() const { return ctx_; }

    /** Append a context frame (outermost last). Returns *this. */
    TmuError &
    context(std::string frame)
    {
        ctx_.push_back(std::move(frame));
        return *this;
    }

    /** "ParseError: bad size line '1 2' (while reading 'a.mtx')". */
    std::string
    str() const
    {
        std::string out = std::string(errcName(code_)) + ": " + message_;
        for (const std::string &c : ctx_)
            out += " (" + c + ")";
        return out;
    }

  private:
    Errc code_;
    std::string message_;
    std::vector<std::string> ctx_;
};

/**
 * Value-or-error result. Deliberately minimal: implicit construction
 * from either side, bool conversion, deref accessors — enough for
 * `if (auto r = tryX(); r) use(*r); else log(r.error())`.
 */
template <typename T>
class [[nodiscard]] Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(TmuError error) : v_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    T &value() { return std::get<T>(v_); }
    const T &value() const { return std::get<T>(v_); }
    T &operator*() { return value(); }
    const T &operator*() const { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

    TmuError &error() { return std::get<TmuError>(v_); }
    const TmuError &error() const { return std::get<TmuError>(v_); }

    /** Add a context frame to the error side (no-op on success). */
    Expected &&
    context(std::string frame) &&
    {
        if (!ok())
            error().context(std::move(frame));
        return std::move(*this);
    }

    /** Value, or TMU_FATAL with the rendered error (legacy paths). */
    T
    valueOrFatal() &&
    {
        if (!ok())
            TMU_FATAL("%s", error().str().c_str());
        return std::move(value());
    }

  private:
    std::variant<T, TmuError> v_;
};

/** Success-or-error result for operations with no value. */
template <>
class [[nodiscard]] Expected<void>
{
  public:
    Expected() = default;
    Expected(TmuError error) : e_(std::move(error)) {}

    bool ok() const { return !e_.has_value(); }
    explicit operator bool() const { return ok(); }

    TmuError &error() { return *e_; }
    const TmuError &error() const { return *e_; }

    Expected &&
    context(std::string frame) &&
    {
        if (!ok())
            e_->context(std::move(frame));
        return std::move(*this);
    }

  private:
    std::optional<TmuError> e_;
};

/** Build a TmuError with a printf-formatted message. */
#define TMU_ERR(code, ...) \
    ::tmu::TmuError((code), ::tmu::detail::format(__VA_ARGS__))

} // namespace tmu
