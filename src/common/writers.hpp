/**
 * @file
 * Machine-readable output writers for the observability layer.
 *
 * JsonWriter — minimal streaming JSON builder (objects, arrays, typed
 *              values, correct escaping; non-finite doubles become
 *              null so output always parses).
 * CsvWriter  — RFC-4180-style CSV with quoting.
 *
 * On top of those, renderers for a StatSnapshot:
 *   renderStatsText — gem5-style `name value  # desc` lines,
 *                     byte-compatible with the historical dumpStats
 *                     report format;
 *   renderStatsJson — {"meta": {...}, "stats": {...}, "desc": {...}};
 *   renderStatsCsv  — name,value,description rows.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/statreg.hpp"

namespace tmu::stats {

/** Streaming JSON builder (beginObject/endObject/key/value calls). */
class JsonWriter
{
  public:
    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key inside an object; must be followed by a value/begin*. */
    JsonWriter &key(const std::string &k);

    JsonWriter &value(const std::string &v);
    JsonWriter &value(const char *v);
    JsonWriter &value(double v);
    JsonWriter &value(std::uint64_t v);
    JsonWriter &value(std::int64_t v);
    JsonWriter &value(int v);
    JsonWriter &value(bool v);
    JsonWriter &null();

    /** The document built so far. */
    const std::string &str() const { return out_; }

    /** JSON-escape @p s (without surrounding quotes). */
    static std::string escape(const std::string &s);

    /** Format @p v as a JSON number ("null" if non-finite). */
    static std::string number(double v);

  private:
    void comma();

    std::string out_;
    std::vector<bool> needComma_; //!< per open scope
    bool afterKey_ = false;
};

/** Column-oriented CSV writer with quoting. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::vector<std::string> header);

    void row(const std::vector<std::string> &cells);

    /** The full document (header + rows, "\n" line ends). */
    std::string str() const;

    /** Quote one cell if it contains a comma, quote, or newline. */
    static std::string escape(const std::string &cell);

  private:
    std::size_t columns_;
    std::string out_;
};

/** Key/value metadata attached to a stats export. */
using MetaList = std::vector<std::pair<std::string, std::string>>;

/** gem5-style plain-text rendering of a snapshot (no banners). */
std::string renderStatsText(const StatSnapshot &snap);

/** Full JSON document for one snapshot. */
std::string renderStatsJson(const StatSnapshot &snap,
                            const MetaList &meta = {});

/** Write @p snap's entries into an already-open JSON object scope. */
void writeSnapshotObject(JsonWriter &jw, const StatSnapshot &snap);

/** CSV document: name,value,description. */
std::string renderStatsCsv(const StatSnapshot &snap);

/** Write @p content to @p path. Warns and returns false on failure. */
bool saveTextFile(const std::string &path, const std::string &content);

} // namespace tmu::stats
