/**
 * @file
 * Chrome trace_event-format timeline writer (JSON Object Format),
 * loadable in Perfetto (ui.perfetto.dev) and chrome://tracing.
 *
 * Time axis: 1 simulated cycle = 1 trace microsecond, so the timeline
 * reads directly in cycles.
 *
 * Three event families cover the simulator's needs:
 *  - complete events ("ph":"X") — spans such as outQ chunk fills;
 *  - counter events  ("ph":"C") — sampled tracks such as outQ
 *    occupancy or in-flight TMU line requests;
 *  - phase tracks — a per-(pid,tid) run-length encoder over per-cycle
 *    states (commit / frontend_stall / backend_stall): models call
 *    phase() every cycle with the current state and the writer emits
 *    one complete event per contiguous run, not one per cycle.
 *
 * Models hold a borrowed TraceWriter* and may be compiled with tracing
 * permanently wired: every hook is null-checked by the caller, so a
 * run without --trace-out pays one branch per cycle.
 */

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tmu::stats {

/** Buffered trace_event writer. */
class TraceWriter
{
  public:
    /** Name the process (timeline group) @p pid. */
    void processName(int pid, const std::string &name);

    /** Name thread (track) @p tid of process @p pid. */
    void threadName(int pid, int tid, const std::string &name);

    /** Complete event: [start, start+dur) span on a track. */
    void complete(int pid, int tid, const std::string &cat,
                  const std::string &name, std::uint64_t startCycle,
                  std::uint64_t durCycles);

    /** Instant event (a zero-duration marker). */
    void instant(int pid, int tid, const std::string &cat,
                 const std::string &name, std::uint64_t cycle);

    /** Counter sample: one series point on track @p name. */
    void counter(int pid, const std::string &name,
                 const std::string &series, double value,
                 std::uint64_t cycle);

    /**
     * Per-cycle phase attribution for track (pid, tid). Contiguous
     * cycles with the same @p name coalesce into one complete event;
     * a gap (the model skipped cycles) closes the open run.
     */
    void phase(int pid, int tid, const char *name, std::uint64_t cycle);

    /** Close every open phase run (end of simulation). */
    void flush();

    /** Render the full JSON document. */
    std::string render() const;

    /** flush() + render() + write to @p path. */
    bool save(const std::string &path);

    /** Events buffered so far (metadata + spans + samples). */
    std::size_t eventCount() const { return events_.size(); }

  private:
    /** One pre-typed event; rendered lazily. */
    struct Event
    {
        enum class Ph : std::uint8_t { Meta, Complete, Instant, Counter };
        Ph ph = Ph::Complete;
        int pid = 0;
        int tid = 0;
        std::string cat;
        std::string name;
        std::string arg;    //!< Meta: name value; Counter: series
        std::uint64_t ts = 0;
        std::uint64_t dur = 0;
        double value = 0.0; //!< Counter sample value
    };

    struct OpenPhase
    {
        const char *name = nullptr;
        std::uint64_t start = 0;
        std::uint64_t last = 0;
    };

    void closePhase(int pid, int tid, const OpenPhase &p);

    std::vector<Event> events_;
    std::map<std::pair<int, int>, OpenPhase> open_;
};

} // namespace tmu::stats
