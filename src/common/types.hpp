/**
 * @file
 * Fundamental scalar types shared across the TMU library.
 *
 * The whole code base traffics in three families of integers: tensor
 * coordinates/pointers (Index), simulated time (Cycle), and simulated
 * byte addresses (Addr). Keeping them as distinct aliases makes intent
 * visible at interfaces even though they are not strong types.
 */

#pragma once

#include <cstddef>
#include <cstdint>

namespace tmu {

/** Tensor coordinate / position-array element. Signed to allow -1 sentinels. */
using Index = std::int64_t;

/** Non-zero value type used by all kernels and the engine. */
using Value = double;

/** Simulated time in core clock cycles. */
using Cycle = std::uint64_t;

/** Simulated byte address (host pointers reinterpreted for the timing model). */
using Addr = std::uint64_t;

/** Invalid/None sentinel for Index fields. */
inline constexpr Index kInvalidIndex = -1;

/** Cache line size used throughout the memory model, in bytes. */
inline constexpr std::uint32_t kLineBytes = 64;

/** Return the cache line (block) address containing @p a. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Return the number of cache lines touched by [a, a+bytes). */
constexpr std::uint32_t
linesTouched(Addr a, std::uint32_t bytes)
{
    if (bytes == 0)
        return 0;
    const Addr first = lineAddr(a);
    const Addr last = lineAddr(a + bytes - 1);
    return static_cast<std::uint32_t>((last - first) / kLineBytes + 1);
}

} // namespace tmu
