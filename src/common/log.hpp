/**
 * @file
 * Status and error reporting in the gem5 tradition.
 *
 * panic()  — an internal invariant was violated: a bug in this library.
 *            Aborts (so debuggers/core dumps can capture state).
 * fatal()  — the *user* asked for something impossible (bad config,
 *            inconsistent tensor). Exits with status 1.
 * warn()   — something is off but simulation can continue.
 * inform() — plain status output.
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace tmu {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatting into a std::string. */
std::string format(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace detail

#define TMU_PANIC(...) \
    ::tmu::detail::panicImpl(__FILE__, __LINE__, ::tmu::detail::format(__VA_ARGS__))

#define TMU_FATAL(...) \
    ::tmu::detail::fatalImpl(__FILE__, __LINE__, ::tmu::detail::format(__VA_ARGS__))

#define TMU_WARN(...) ::tmu::detail::warnImpl(::tmu::detail::format(__VA_ARGS__))

#define TMU_INFORM(...) ::tmu::detail::informImpl(::tmu::detail::format(__VA_ARGS__))

/** Always-on assertion that panics with location info. */
#define TMU_ASSERT(cond, ...)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::tmu::detail::panicImpl(__FILE__, __LINE__,                   \
                std::string("assertion failed: " #cond)                   \
                __VA_OPT__(+ " " + ::tmu::detail::format(__VA_ARGS__)));   \
        }                                                                  \
    } while (0)

} // namespace tmu
