/**
 * @file
 * Minimal C++20 coroutine generator.
 *
 * Baseline kernels are executed as coroutines that lazily yield micro-ops
 * into the core timing model, so multi-gigabyte traces never materialize.
 * std::generator is C++23; this is the small subset we need: move-only,
 * input-iteration, exception propagation on resume.
 */

#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace tmu {

/** Lazy, move-only single-pass sequence produced by a coroutine. */
template <typename T>
class Generator
{
  public:
    struct promise_type
    {
        T current;
        std::exception_ptr exception;

        Generator
        get_return_object()
        {
            return Generator(
                std::coroutine_handle<promise_type>::from_promise(*this));
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        std::suspend_always final_suspend() noexcept { return {}; }

        std::suspend_always
        yield_value(T value) noexcept(std::is_nothrow_move_assignable_v<T>)
        {
            current = std::move(value);
            return {};
        }

        void return_void() noexcept {}
        void unhandled_exception() { exception = std::current_exception(); }
    };

    Generator() = default;

    explicit Generator(std::coroutine_handle<promise_type> h) : handle_(h) {}

    Generator(Generator &&o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Generator &
    operator=(Generator &&o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Generator(const Generator &) = delete;
    Generator &operator=(const Generator &) = delete;

    ~Generator() { destroy(); }

    /**
     * Advance to the next value.
     * @retval true a new value is available via value().
     * @retval false the coroutine completed.
     */
    bool
    next()
    {
        if (!handle_ || handle_.done())
            return false;
        handle_.resume();
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
        return !handle_.done();
    }

    /** Last value produced by next(). */
    const T &value() const { return handle_.promise().current; }
    T &value() { return handle_.promise().current; }

    /** True if the underlying coroutine has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    std::coroutine_handle<promise_type> handle_;
};

} // namespace tmu
