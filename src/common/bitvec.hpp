/**
 * @file
 * Fixed-width lane predicates.
 *
 * TMU layers produce multi-hot predicates over at most 64 lanes (the
 * evaluated design has 8). LaneMask wraps a uint64_t with the handful of
 * operations the merge/lockstep FSMs need.
 */

#pragma once

#include <bit>
#include <cstdint>

#include "common/log.hpp"

namespace tmu {

/** Multi-hot predicate over up to 64 TMU lanes. Bit i == lane i active. */
class LaneMask
{
  public:
    constexpr LaneMask() = default;
    constexpr explicit LaneMask(std::uint64_t bits) : bits_(bits) {}

    /** Mask with lanes [0, n) set. */
    static constexpr LaneMask
    firstN(unsigned n)
    {
        return LaneMask(n >= 64 ? ~0ULL : ((1ULL << n) - 1));
    }

    constexpr std::uint64_t bits() const { return bits_; }
    constexpr bool empty() const { return bits_ == 0; }
    constexpr bool test(unsigned lane) const { return (bits_ >> lane) & 1; }
    constexpr int count() const { return std::popcount(bits_); }

    void set(unsigned lane) { bits_ |= (1ULL << lane); }
    void clear(unsigned lane) { bits_ &= ~(1ULL << lane); }

    /** Index of the lowest set lane; mask must be non-empty. */
    unsigned
    lowest() const
    {
        TMU_ASSERT(bits_ != 0);
        return static_cast<unsigned>(std::countr_zero(bits_));
    }

    constexpr LaneMask operator&(LaneMask o) const { return LaneMask(bits_ & o.bits_); }
    constexpr LaneMask operator|(LaneMask o) const { return LaneMask(bits_ | o.bits_); }
    constexpr LaneMask operator~() const { return LaneMask(~bits_); }
    constexpr bool operator==(const LaneMask &) const = default;

  private:
    std::uint64_t bits_ = 0;
};

} // namespace tmu
