#include "statreg.hpp"

#include "common/log.hpp"

namespace tmu::stats {

const SnapshotEntry *
StatSnapshot::find(const std::string &name) const
{
    for (const SnapshotEntry &e : entries) {
        if (e.name == name)
            return &e;
    }
    return nullptr;
}

void
StatRegistry::add(std::string name, std::string desc,
                  std::function<void(std::vector<SnapshotEntry> &)> sample)
{
    TMU_ASSERT(!name.empty());
    const auto [it, inserted] = byName_.emplace(name, defs_.size());
    if (!inserted)
        TMU_PANIC("duplicate stat name '%s'", name.c_str());
    defs_.push_back({std::move(name), std::move(desc), std::move(sample)});
}

void
StatRegistry::scalar(std::string name, std::string desc,
                     const std::uint64_t *v)
{
    TMU_ASSERT(v != nullptr);
    std::string n = name, d = desc;
    add(std::move(name), std::move(desc),
        [n = std::move(n), d = std::move(d),
         v](std::vector<SnapshotEntry> &out) {
            out.push_back({n, d, StatKind::U64, *v, 0.0});
        });
}

void
StatRegistry::scalar(std::string name, std::string desc, const double *v)
{
    TMU_ASSERT(v != nullptr);
    std::string n = name, d = desc;
    add(std::move(name), std::move(desc),
        [n = std::move(n), d = std::move(d),
         v](std::vector<SnapshotEntry> &out) {
            out.push_back({n, d, StatKind::F64, 0, *v});
        });
}

void
StatRegistry::scalarU64(std::string name, std::string desc,
                        std::function<std::uint64_t()> get)
{
    TMU_ASSERT(get != nullptr);
    std::string n = name, d = desc;
    add(std::move(name), std::move(desc),
        [n = std::move(n), d = std::move(d),
         get = std::move(get)](std::vector<SnapshotEntry> &out) {
            out.push_back({n, d, StatKind::U64, get(), 0.0});
        });
}

void
StatRegistry::formula(std::string name, std::string desc,
                      std::function<double()> get)
{
    TMU_ASSERT(get != nullptr);
    std::string n = name, d = desc;
    add(std::move(name), std::move(desc),
        [n = std::move(n), d = std::move(d),
         get = std::move(get)](std::vector<SnapshotEntry> &out) {
            out.push_back({n, d, StatKind::F64, 0, get()});
        });
}

void
StatRegistry::vector(std::string name, std::string desc,
                     const std::vector<std::uint64_t> *v)
{
    TMU_ASSERT(v != nullptr);
    std::string n = name, d = desc;
    add(std::move(name), std::move(desc),
        [n = std::move(n), d = std::move(d),
         v](std::vector<SnapshotEntry> &out) {
            for (std::size_t i = 0; i < v->size(); ++i) {
                out.push_back({n + "." + std::to_string(i), d,
                               StatKind::U64, (*v)[i], 0.0});
            }
        });
}

void
StatRegistry::histogram(std::string name, std::string desc,
                        const Histogram *h)
{
    TMU_ASSERT(h != nullptr);
    std::string n = name, d = desc;
    add(std::move(name), std::move(desc),
        [n = std::move(n), d = std::move(d),
         h](std::vector<SnapshotEntry> &out) {
            out.push_back({n + ".total", d + " (samples)", StatKind::U64,
                           h->total(), 0.0});
            out.push_back({n + ".lo", d + " (range low)", StatKind::F64,
                           0, h->lo()});
            out.push_back({n + ".hi", d + " (range high)", StatKind::F64,
                           0, h->hi()});
            for (std::size_t i = 0; i < h->buckets(); ++i) {
                out.push_back({n + ".bucket" + std::to_string(i), d,
                               StatKind::U64, h->bucket(i), 0.0});
            }
        });
}

bool
StatRegistry::contains(const std::string &name) const
{
    return byName_.count(name) != 0;
}

std::string
StatRegistry::describe(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it == byName_.end() ? std::string{} : defs_[it->second].desc;
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    snap.entries.reserve(defs_.size());
    for (const StatDef &def : defs_)
        def.sample(snap.entries);
    return snap;
}

} // namespace tmu::stats
