#include "tracewriter.hpp"

#include <string_view>

#include "common/writers.hpp"

namespace tmu::stats {

void
TraceWriter::processName(int pid, const std::string &name)
{
    Event e;
    e.ph = Event::Ph::Meta;
    e.pid = pid;
    e.name = "process_name";
    e.arg = name;
    events_.push_back(std::move(e));
}

void
TraceWriter::threadName(int pid, int tid, const std::string &name)
{
    Event e;
    e.ph = Event::Ph::Meta;
    e.pid = pid;
    e.tid = tid;
    e.name = "thread_name";
    e.arg = name;
    events_.push_back(std::move(e));
}

void
TraceWriter::complete(int pid, int tid, const std::string &cat,
                      const std::string &name, std::uint64_t startCycle,
                      std::uint64_t durCycles)
{
    Event e;
    e.ph = Event::Ph::Complete;
    e.pid = pid;
    e.tid = tid;
    e.cat = cat;
    e.name = name;
    e.ts = startCycle;
    e.dur = durCycles;
    events_.push_back(std::move(e));
}

void
TraceWriter::instant(int pid, int tid, const std::string &cat,
                     const std::string &name, std::uint64_t cycle)
{
    Event e;
    e.ph = Event::Ph::Instant;
    e.pid = pid;
    e.tid = tid;
    e.cat = cat;
    e.name = name;
    e.ts = cycle;
    events_.push_back(std::move(e));
}

void
TraceWriter::counter(int pid, const std::string &name,
                     const std::string &series, double value,
                     std::uint64_t cycle)
{
    Event e;
    e.ph = Event::Ph::Counter;
    e.pid = pid;
    e.name = name;
    e.arg = series;
    e.ts = cycle;
    e.value = value;
    events_.push_back(std::move(e));
}

void
TraceWriter::closePhase(int pid, int tid, const OpenPhase &p)
{
    complete(pid, tid, "phase", p.name, p.start, p.last - p.start + 1);
}

void
TraceWriter::phase(int pid, int tid, const char *name,
                   std::uint64_t cycle)
{
    OpenPhase &p = open_[{pid, tid}];
    if (p.name != nullptr) {
        // Extend the open run only if the state is unchanged and the
        // model did not skip cycles (drained cores stop ticking).
        const bool same =
            p.name == name || std::string_view(p.name) == name;
        if (same && cycle == p.last + 1) {
            p.last = cycle;
            return;
        }
        closePhase(pid, tid, p);
    }
    p.name = name;
    p.start = p.last = cycle;
}

void
TraceWriter::flush()
{
    for (auto &[key, p] : open_) {
        if (p.name != nullptr)
            closePhase(key.first, key.second, p);
        p.name = nullptr;
    }
}

std::string
TraceWriter::render() const
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("displayTimeUnit").value("ms");
    jw.key("traceEvents").beginArray();
    for (const Event &e : events_) {
        jw.beginObject();
        switch (e.ph) {
          case Event::Ph::Meta:
            jw.key("ph").value("M");
            jw.key("pid").value(e.pid);
            jw.key("tid").value(e.tid);
            jw.key("name").value(e.name);
            jw.key("args").beginObject().key("name").value(e.arg)
                .endObject();
            break;
          case Event::Ph::Complete:
            jw.key("ph").value("X");
            jw.key("pid").value(e.pid);
            jw.key("tid").value(e.tid);
            jw.key("cat").value(e.cat);
            jw.key("name").value(e.name);
            jw.key("ts").value(e.ts);
            jw.key("dur").value(e.dur);
            break;
          case Event::Ph::Instant:
            jw.key("ph").value("i");
            jw.key("pid").value(e.pid);
            jw.key("tid").value(e.tid);
            jw.key("cat").value(e.cat);
            jw.key("name").value(e.name);
            jw.key("ts").value(e.ts);
            jw.key("s").value("t");
            break;
          case Event::Ph::Counter:
            jw.key("ph").value("C");
            jw.key("pid").value(e.pid);
            jw.key("tid").value(0);
            jw.key("name").value(e.name);
            jw.key("ts").value(e.ts);
            jw.key("args").beginObject().key(e.arg).value(e.value)
                .endObject();
            break;
        }
        jw.endObject();
    }
    jw.endArray();
    jw.endObject();
    return jw.str();
}

bool
TraceWriter::save(const std::string &path)
{
    flush();
    return saveTextFile(path, render());
}

} // namespace tmu::stats
