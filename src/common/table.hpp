/**
 * @file
 * Plain-text table rendering for the benchmark harness.
 *
 * Every bench binary prints the rows/series of one paper figure or table;
 * TextTable keeps the output aligned and diffable.
 */

#pragma once

#include <string>
#include <vector>

namespace tmu {

/** Column-aligned ASCII table with an optional title and header row. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width if one was set. */
    void row(std::vector<std::string> cells);

    /** Convenience: format a double with @p prec decimals. */
    static std::string num(double v, int prec = 2);

    /** Render the full table (title, rule, header, rows). */
    std::string render() const;

    /** Render to stdout. */
    void print() const;

    const std::string &title() const { return title_; }
    const std::vector<std::string> &headerCells() const
    {
        return header_;
    }
    const std::vector<std::vector<std::string>> &rowCells() const
    {
        return rows_;
    }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tmu
