/**
 * @file
 * Minimal recursive-descent JSON reader, the read-side complement of
 * stats::JsonWriter. Exists for the sweep journal: tmu_run appends one
 * JSON line per finished task and must replay them after a crash, so
 * the reader is strict about structure but deliberately tolerant at
 * the call site — a truncated tail line simply fails to parse and the
 * journal replay drops it.
 *
 * Numbers keep their raw source text alongside the parsed value:
 * unsigned integers round-trip exactly through asU64(), and doubles
 * re-rendered with JsonWriter::number() (%.12g) reproduce the original
 * text, which the resume path relies on for byte-identical exports.
 */

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace tmu::json {

/** One parsed JSON value (a tree; objects keep member order). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool b = false;       //!< valid when kind == Bool
    std::string text;     //!< raw number text / string payload
    std::vector<Value> items; //!< valid when kind == Array
    std::vector<std::pair<std::string, Value>> members; //!< Object

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }
    bool isString() const { return kind == Kind::String; }
    bool isNumber() const { return kind == Kind::Number; }

    /** Member lookup in an object; nullptr when absent or not one. */
    const Value *find(const std::string &key) const;

    /** String payload ("" when not a string). */
    const std::string &asString() const;

    /** Number as u64; error on sign/fraction/overflow/non-number. */
    Expected<std::uint64_t> asU64() const;

    /** Number as double; error when not a parseable number. */
    Expected<double> asDouble() const;

    /** Bool payload (false when not a bool). */
    bool asBool() const { return kind == Kind::Bool && b; }
};

/**
 * Parse one complete JSON document from @p text. Trailing
 * non-whitespace (as after a torn journal line) is a ParseError.
 */
Expected<Value> parse(const std::string &text);

} // namespace tmu::json
