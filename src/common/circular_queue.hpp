/**
 * @file
 * Fixed-capacity circular FIFO.
 *
 * TMU data streams are hardware circular queues carved out of the
 * per-lane storage; capacity is fixed at configuration time and overflow
 * is a programming error (the FSMs check space before pushing).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "common/log.hpp"

namespace tmu {

/** Bounded FIFO with O(1) push/pop and random peek from the head. */
template <typename T>
class CircularQueue
{
  public:
    CircularQueue() = default;

    explicit CircularQueue(std::size_t capacity) { reset(capacity); }

    /** Drop all contents and set a new capacity. */
    void
    reset(std::size_t capacity)
    {
        TMU_ASSERT(capacity > 0);
        // clear+resize (not assign) so move-only element types work.
        buf_.clear();
        buf_.resize(capacity);
        head_ = 0;
        size_ = 0;
    }

    std::size_t capacity() const { return buf_.size(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    bool full() const { return size_ == buf_.size(); }
    std::size_t space() const { return buf_.size() - size_; }

    void
    push(T v)
    {
        TMU_ASSERT(!full(), "circular queue overflow (capacity %zu)",
                   buf_.size());
        buf_[(head_ + size_) % buf_.size()] = std::move(v);
        ++size_;
    }

    /** Element at distance @p i from the head (i = 0 is the head). */
    const T &
    peek(std::size_t i = 0) const
    {
        TMU_ASSERT(i < size_);
        return buf_[(head_ + i) % buf_.size()];
    }

    T &
    peek(std::size_t i = 0)
    {
        TMU_ASSERT(i < size_);
        return buf_[(head_ + i) % buf_.size()];
    }

    T
    pop()
    {
        TMU_ASSERT(!empty());
        T v = std::move(buf_[head_]);
        head_ = (head_ + 1) % buf_.size();
        --size_;
        return v;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace tmu
