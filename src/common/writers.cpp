#include "writers.hpp"

#include <cmath>
#include <cstdio>

#include "common/log.hpp"

namespace tmu::stats {

// --- JsonWriter --------------------------------------------------------------------

void
JsonWriter::comma()
{
    if (afterKey_) {
        afterKey_ = false;
        return; // the key already emitted the separator logic
    }
    if (!needComma_.empty()) {
        if (needComma_.back())
            out_ += ',';
        needComma_.back() = true;
    }
}

JsonWriter &
JsonWriter::beginObject()
{
    comma();
    out_ += '{';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    TMU_ASSERT(!needComma_.empty() && !afterKey_);
    needComma_.pop_back();
    out_ += '}';
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    comma();
    out_ += '[';
    needComma_.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    TMU_ASSERT(!needComma_.empty() && !afterKey_);
    needComma_.pop_back();
    out_ += ']';
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &k)
{
    TMU_ASSERT(!afterKey_, "two keys in a row");
    comma();
    out_ += '"';
    out_ += escape(k);
    out_ += "\":";
    afterKey_ = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &v)
{
    comma();
    out_ += '"';
    out_ += escape(v);
    out_ += '"';
    return *this;
}

JsonWriter &
JsonWriter::value(const char *v)
{
    return value(std::string(v));
}

JsonWriter &
JsonWriter::value(double v)
{
    comma();
    out_ += number(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::uint64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t v)
{
    comma();
    out_ += std::to_string(v);
    return *this;
}

JsonWriter &
JsonWriter::value(int v)
{
    return value(static_cast<std::int64_t>(v));
}

JsonWriter &
JsonWriter::value(bool v)
{
    comma();
    out_ += v ? "true" : "false";
    return *this;
}

JsonWriter &
JsonWriter::null()
{
    comma();
    out_ += "null";
    return *this;
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonWriter::number(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

// --- CsvWriter ---------------------------------------------------------------------

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size())
{
    TMU_ASSERT(columns_ > 0);
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (i)
            out_ += ',';
        out_ += escape(header[i]);
    }
    out_ += '\n';
}

void
CsvWriter::row(const std::vector<std::string> &cells)
{
    TMU_ASSERT(cells.size() == columns_,
               "CSV row has %zu cells, header has %zu", cells.size(),
               columns_);
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ += ',';
        out_ += escape(cells[i]);
    }
    out_ += '\n';
}

std::string
CsvWriter::str() const
{
    return out_;
}

std::string
CsvWriter::escape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n\r") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (const char c : cell) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

// --- Snapshot renderers ------------------------------------------------------------

std::string
renderStatsText(const StatSnapshot &snap)
{
    std::string out;
    for (const SnapshotEntry &e : snap.entries) {
        if (e.kind == StatKind::U64) {
            out += detail::format("%-40s %18llu  # %s\n",
                                  e.name.c_str(),
                                  static_cast<unsigned long long>(e.u),
                                  e.desc.c_str());
        } else {
            out += detail::format("%-40s %18.6f  # %s\n",
                                  e.name.c_str(), e.f, e.desc.c_str());
        }
    }
    return out;
}

void
writeSnapshotObject(JsonWriter &jw, const StatSnapshot &snap)
{
    for (const SnapshotEntry &e : snap.entries) {
        jw.key(e.name);
        if (e.kind == StatKind::U64)
            jw.value(e.u);
        else
            jw.value(e.f);
    }
}

std::string
renderStatsJson(const StatSnapshot &snap, const MetaList &meta)
{
    JsonWriter jw;
    jw.beginObject();
    jw.key("meta").beginObject();
    for (const auto &[k, v] : meta)
        jw.key(k).value(v);
    jw.endObject();
    jw.key("stats").beginObject();
    writeSnapshotObject(jw, snap);
    jw.endObject();
    jw.key("desc").beginObject();
    for (const SnapshotEntry &e : snap.entries)
        jw.key(e.name).value(e.desc);
    jw.endObject();
    jw.endObject();
    return jw.str();
}

std::string
renderStatsCsv(const StatSnapshot &snap)
{
    CsvWriter csv({"name", "value", "description"});
    for (const SnapshotEntry &e : snap.entries) {
        const std::string value =
            e.kind == StatKind::U64 ? std::to_string(e.u)
                                    : JsonWriter::number(e.f);
        csv.row({e.name, value, e.desc});
    }
    return csv.str();
}

bool
saveTextFile(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) {
        TMU_WARN("cannot open '%s' for writing", path.c_str());
        return false;
    }
    const std::size_t n =
        std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (n != content.size()) {
        TMU_WARN("short write to '%s'", path.c_str());
        return false;
    }
    return true;
}

} // namespace tmu::stats
