/**
 * @file
 * Hierarchical statistics registry in the gem5 tradition.
 *
 * Every model that owns counters registers them here under a dotted
 * name ("core0.l1.accesses") with a one-line description. Stats are
 * *live*: the registry borrows pointers/closures into the owning model
 * and reads them lazily, so registration is free on the simulated hot
 * path. snapshot() detaches a value copy that survives the models and
 * feeds the text/JSON/CSV renderers (see writers.hpp).
 *
 * Kinds:
 *  - scalar    a u64 or f64 counter read through a borrowed pointer;
 *  - formula   a derived value (rates, ratios) computed at sample time;
 *  - vector    a u64 sequence, flattened to name.0, name.1, ...;
 *  - histogram a tmu::Histogram, flattened to name.total plus
 *              name.bucket<i> (bucket bounds exported alongside).
 *
 * Registering the same name twice is a programming error and panics.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"

namespace tmu::stats {

/** Value domain of one stat (drives text/JSON rendering). */
enum class StatKind : std::uint8_t { U64, F64 };

/** One flattened, detached (name, description, value) sample. */
struct SnapshotEntry
{
    std::string name;
    std::string desc;
    StatKind kind = StatKind::U64;
    std::uint64_t u = 0; //!< valid when kind == U64
    double f = 0.0;      //!< valid when kind == F64

    double
    value() const
    {
        return kind == StatKind::U64 ? static_cast<double>(u) : f;
    }
};

/** Detached value copy of a whole registry, in registration order. */
struct StatSnapshot
{
    std::vector<SnapshotEntry> entries;

    /** Entry with exactly @p name, or nullptr. */
    const SnapshotEntry *find(const std::string &name) const;
};

/** Hierarchical dotted-name stat registry. */
class StatRegistry
{
  public:
    /** Live u64 counter (borrowed; must outlive the registry). */
    void scalar(std::string name, std::string desc,
                const std::uint64_t *v);

    /** Live f64 value (borrowed). */
    void scalar(std::string name, std::string desc, const double *v);

    /** Derived u64 computed at snapshot time. */
    void scalarU64(std::string name, std::string desc,
                   std::function<std::uint64_t()> get);

    /** Derived f64 (rates, ratios) computed at snapshot time. */
    void formula(std::string name, std::string desc,
                 std::function<double()> get);

    /** Live u64 vector (borrowed), flattened to name.<i>. */
    void vector(std::string name, std::string desc,
                const std::vector<std::uint64_t> *v);

    /**
     * Live histogram (borrowed), flattened to name.total and
     * name.bucket<i>; lo/hi bounds exported as name.lo / name.hi.
     */
    void histogram(std::string name, std::string desc,
                   const Histogram *h);

    /** Number of registered stats (vectors/histograms count once). */
    std::size_t size() const { return defs_.size(); }

    /** True if a stat was registered under exactly @p name. */
    bool contains(const std::string &name) const;

    /** Description of the stat registered under @p name ("" if none). */
    std::string describe(const std::string &name) const;

    /** Detach a value copy of every stat, in registration order. */
    StatSnapshot snapshot() const;

  private:
    struct StatDef
    {
        std::string name;
        std::string desc;
        /** Appends this stat's flattened entries to the snapshot. */
        std::function<void(std::vector<SnapshotEntry> &)> sample;
    };

    void add(std::string name, std::string desc,
             std::function<void(std::vector<SnapshotEntry> &)> sample);

    std::vector<StatDef> defs_;
    std::unordered_map<std::string, std::size_t> byName_;
};

} // namespace tmu::stats
