/**
 * @file
 * Small statistics helpers used by the simulator and the bench harness.
 */

#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/log.hpp"

namespace tmu {

/** Streaming mean/min/max/variance accumulator (Welford). */
class RunningStat
{
  public:
    void
    add(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    std::uint64_t count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Geometric mean of a set of strictly-positive samples. */
inline double
geomean(const std::vector<double> &xs)
{
    TMU_ASSERT(!xs.empty());
    double acc = 0.0;
    for (double x : xs) {
        TMU_ASSERT(x > 0.0, "geomean requires positive samples, got %f", x);
        acc += std::log(x);
    }
    return std::exp(acc / static_cast<double>(xs.size()));
}

/** Fixed-bucket histogram over [lo, hi) with out-of-range clamping. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets, 0)
    {
        TMU_ASSERT(hi > lo && buckets > 0);
    }

    void
    add(double x)
    {
        const double t = (x - lo_) / (hi_ - lo_);
        auto b = static_cast<std::int64_t>(t * static_cast<double>(counts_.size()));
        b = std::clamp<std::int64_t>(b, 0,
            static_cast<std::int64_t>(counts_.size()) - 1);
        ++counts_[static_cast<std::size_t>(b)];
        ++total_;
    }

    std::uint64_t total() const { return total_; }
    std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
    std::size_t buckets() const { return counts_.size(); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    /** Midpoint of bucket @p i. */
    double
    bucketMid(std::size_t i) const
    {
        const double w = (hi_ - lo_) / static_cast<double>(counts_.size());
        return lo_ + (static_cast<double>(i) + 0.5) * w;
    }

    /**
     * Approximate quantile (0 <= q <= 1) from bucket midpoints.
     * quantile(0.0) is the midpoint of the first non-empty bucket and
     * quantile(1.0) the midpoint of the last non-empty bucket, so every
     * result is a value the histogram could actually represent.
     */
    double
    quantile(double q) const
    {
        TMU_ASSERT(total_ > 0);
        TMU_ASSERT(q >= 0.0 && q <= 1.0, "quantile %f out of [0,1]", q);
        // target = number of samples strictly below the answer; q=1.0
        // must not demand total_ samples below it (off-by-one: the
        // old code fell off the loop and returned hi_, which is not a
        // bucket midpoint).
        auto target =
            static_cast<std::uint64_t>(q * static_cast<double>(total_));
        if (target >= total_)
            target = total_ - 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < counts_.size(); ++i) {
            seen += counts_[i];
            if (seen > target)
                return bucketMid(i);
        }
        return bucketMid(counts_.size() - 1); // unreachable if total_>0
    }

  private:
    double lo_;
    double hi_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace tmu
