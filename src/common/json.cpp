#include "json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace tmu::json {

namespace {

/** Cursor over the source text with one-token-lookahead helpers. */
struct Parser
{
    const char *p;
    const char *end;

    void
    skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    consume(char c)
    {
        if (p < end && *p == c) {
            ++p;
            return true;
        }
        return false;
    }

    Expected<void>
    expect(char c)
    {
        if (!consume(c)) {
            return TMU_ERR(Errc::ParseError, "expected '%c' before '%c'",
                           c, p < end ? *p : '$');
        }
        return {};
    }

    Expected<Value> parseValue(int depth);
    Expected<std::string> parseString();
    Expected<Value> parseNumber();
};

Expected<std::string>
Parser::parseString()
{
    if (!consume('"'))
        return TMU_ERR(Errc::ParseError, "expected string");
    std::string out;
    while (p < end && *p != '"') {
        const char c = *p++;
        if (c != '\\') {
            out += c;
            continue;
        }
        if (p >= end)
            return TMU_ERR(Errc::Truncated, "string ends in escape");
        const char e = *p++;
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 4)
                return TMU_ERR(Errc::Truncated, "short \\u escape");
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
                const char h = *p++;
                cp <<= 4;
                if (h >= '0' && h <= '9')
                    cp |= static_cast<unsigned>(h - '0');
                else if (h >= 'a' && h <= 'f')
                    cp |= static_cast<unsigned>(h - 'a' + 10);
                else if (h >= 'A' && h <= 'F')
                    cp |= static_cast<unsigned>(h - 'A' + 10);
                else
                    return TMU_ERR(Errc::ParseError,
                                   "bad \\u escape digit '%c'", h);
            }
            // UTF-8 encode (BMP only; surrogate pairs are not emitted
            // by JsonWriter, which only escapes control characters).
            if (cp < 0x80) {
                out += static_cast<char>(cp);
            } else if (cp < 0x800) {
                out += static_cast<char>(0xC0 | (cp >> 6));
                out += static_cast<char>(0x80 | (cp & 0x3F));
            } else {
                out += static_cast<char>(0xE0 | (cp >> 12));
                out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                out += static_cast<char>(0x80 | (cp & 0x3F));
            }
            break;
          }
          default:
            return TMU_ERR(Errc::ParseError, "bad escape '\\%c'", e);
        }
    }
    if (!consume('"'))
        return TMU_ERR(Errc::Truncated, "unterminated string");
    return out;
}

Expected<Value>
Parser::parseNumber()
{
    const char *start = p;
    if (p < end && *p == '-')
        ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' ||
                       *p == '+' || *p == '-'))
        ++p;
    if (p == start)
        return TMU_ERR(Errc::ParseError, "expected number");
    Value v;
    v.kind = Value::Kind::Number;
    v.text.assign(start, static_cast<std::size_t>(p - start));
    // Validate now so asDouble() cannot fail later on accepted input.
    char *endp = nullptr;
    std::strtod(v.text.c_str(), &endp);
    if (endp != v.text.c_str() + v.text.size())
        return TMU_ERR(Errc::ParseError, "bad number '%s'",
                       v.text.c_str());
    return v;
}

Expected<Value>
Parser::parseValue(int depth)
{
    if (depth > 64)
        return TMU_ERR(Errc::ParseError, "nesting too deep");
    skipWs();
    if (p >= end)
        return TMU_ERR(Errc::Truncated, "unexpected end of input");
    const char c = *p;
    if (c == '{') {
        ++p;
        Value v;
        v.kind = Value::Kind::Object;
        skipWs();
        if (consume('}'))
            return v;
        for (;;) {
            skipWs();
            auto key = parseString();
            if (!key)
                return std::move(key.error());
            skipWs();
            if (auto e = expect(':'); !e)
                return std::move(e.error());
            auto member = parseValue(depth + 1);
            if (!member)
                return std::move(member.error());
            v.members.emplace_back(std::move(*key),
                                   std::move(*member));
            skipWs();
            if (consume(','))
                continue;
            if (auto e = expect('}'); !e)
                return std::move(e.error());
            return v;
        }
    }
    if (c == '[') {
        ++p;
        Value v;
        v.kind = Value::Kind::Array;
        skipWs();
        if (consume(']'))
            return v;
        for (;;) {
            auto item = parseValue(depth + 1);
            if (!item)
                return std::move(item.error());
            v.items.push_back(std::move(*item));
            skipWs();
            if (consume(','))
                continue;
            if (auto e = expect(']'); !e)
                return std::move(e.error());
            return v;
        }
    }
    if (c == '"') {
        auto s = parseString();
        if (!s)
            return std::move(s.error());
        Value v;
        v.kind = Value::Kind::String;
        v.text = std::move(*s);
        return v;
    }
    auto literal = [&](const char *word, Value v) -> Expected<Value> {
        const std::size_t n = std::char_traits<char>::length(word);
        if (static_cast<std::size_t>(end - p) < n ||
            std::char_traits<char>::compare(p, word, n) != 0)
            return TMU_ERR(Errc::ParseError, "bad literal near '%c'",
                           c);
        p += n;
        return v;
    };
    if (c == 't') {
        Value v;
        v.kind = Value::Kind::Bool;
        v.b = true;
        return literal("true", v);
    }
    if (c == 'f') {
        Value v;
        v.kind = Value::Kind::Bool;
        return literal("false", v);
    }
    if (c == 'n')
        return literal("null", Value{});
    return parseNumber();
}

} // namespace

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const std::string &
Value::asString() const
{
    static const std::string empty;
    return kind == Kind::String ? text : empty;
}

Expected<std::uint64_t>
Value::asU64() const
{
    if (kind != Kind::Number)
        return TMU_ERR(Errc::ParseError, "not a number");
    std::uint64_t v = 0;
    const char *begin = text.c_str();
    const char *end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, v);
    if (ec == std::errc::result_out_of_range)
        return TMU_ERR(Errc::Overflow, "'%s' overflows u64",
                       text.c_str());
    if (ec != std::errc{} || ptr != end)
        return TMU_ERR(Errc::ParseError, "'%s' is not a u64",
                       text.c_str());
    return v;
}

Expected<double>
Value::asDouble() const
{
    if (kind != Kind::Number)
        return TMU_ERR(Errc::ParseError, "not a number");
    char *endp = nullptr;
    const double v = std::strtod(text.c_str(), &endp);
    if (endp != text.c_str() + text.size())
        return TMU_ERR(Errc::ParseError, "'%s' is not a double",
                       text.c_str());
    return v;
}

Expected<Value>
parse(const std::string &text)
{
    Parser parser{text.c_str(), text.c_str() + text.size()};
    auto v = parser.parseValue(0);
    if (!v)
        return v;
    parser.skipWs();
    if (parser.p != parser.end) {
        return TMU_ERR(Errc::ParseError,
                       "trailing content after document");
    }
    return v;
}

} // namespace tmu::json
