/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * Every synthetic input in the benchmark suite is produced from a fixed
 * seed so that runs are reproducible across machines; std::mt19937 is
 * avoided because its distributions are not portable across standard
 * library implementations.
 */

#pragma once

#include <cmath>
#include <cstdint>

#include "common/log.hpp"
#include "common/types.hpp"

namespace tmu {

/**
 * xoshiro256** 1.0 by Blackman & Vigna (public domain reference
 * implementation), seeded via splitmix64.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        // splitmix64 to spread the seed across the four state words.
        for (auto &word : state_) {
            seed += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @p bound must be > 0. */
    std::uint64_t
    nextBounded(std::uint64_t bound)
    {
        TMU_ASSERT(bound > 0);
        // Lemire's multiply-shift rejection method.
        std::uint64_t x = next();
        __uint128_t m = static_cast<__uint128_t>(x) * bound;
        auto lo = static_cast<std::uint64_t>(m);
        if (lo < bound) {
            const std::uint64_t threshold = (0 - bound) % bound;
            while (lo < threshold) {
                x = next();
                m = static_cast<__uint128_t>(x) * bound;
                lo = static_cast<std::uint64_t>(m);
            }
        }
        return static_cast<std::uint64_t>(m >> 64);
    }

    /** Uniform Index in [lo, hi). */
    Index
    nextIndex(Index lo, Index hi)
    {
        TMU_ASSERT(lo < hi);
        return lo + static_cast<Index>(
            nextBounded(static_cast<std::uint64_t>(hi - lo)));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform Value in [lo, hi). */
    Value
    nextValue(Value lo, Value hi)
    {
        return lo + (hi - lo) * nextDouble();
    }

    /** True with probability @p p. */
    bool
    nextBool(double p)
    {
        return nextDouble() < p;
    }

    /**
     * Approximate Zipf-distributed integer in [0, n) with exponent @p s,
     * via inverse-CDF on the continuous bounded Pareto approximation.
     * Used to synthesize power-law row-degree distributions.
     */
    Index
    nextZipf(Index n, double s)
    {
        TMU_ASSERT(n > 0 && s > 0.0 && s != 1.0);
        const double u = nextDouble();
        const double oneMinusS = 1.0 - s;
        const double hi = std::pow(static_cast<double>(n) + 1.0, oneMinusS);
        const double x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / oneMinusS);
        Index k = static_cast<Index>(x) - 1;
        if (k < 0)
            k = 0;
        if (k >= n)
            k = n - 1;
        return k;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace tmu
