/**
 * @file
 * Paper Table 4: how the sparse kernels map onto TMU hardware. The
 * rows live in src/workloads/table4.{hpp,cpp} — migrated kernels are
 * introspected from their declarative plan IR (labels from PlanSpec
 * metadata, programs from plan::lowerProgram), the rest from the
 * src/workloads/programs.hpp builders. A tier-1 golden test pins the
 * rendered table byte-for-byte (tests/golden/table4.txt), so this
 * binary only prints it and records the JSON mirror.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "workloads/table4.hpp"

int
main()
{
    const tmu::workloads::Table4 t4;
    tmu::bench::BenchReport rep("table4_mapping");
    std::fputs(tmu::workloads::Table4::header().c_str(), stdout);
    rep.print(t4.table()); //!< stdout == t4.report(), JSON mirrored
    return 0;
}
