/**
 * @file
 * Paper Table 4: how the sparse kernels map onto TMU hardware. Each
 * row is produced by *introspecting a real program* built by the
 * src/workloads/programs.hpp builders (the same builders the timing
 * runs use), listing the traversal primitives, data streams, group
 * modes and callbacks it instantiates. Every program is additionally
 * executed through the functional interpreter on a tiny input as a
 * liveness check.
 */

#include <cstdio>
#include <map>
#include <set>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tmu/functional.hpp"
#include "workloads/programs.hpp"

using namespace tmu;
using namespace tmu::engine;
using namespace tmu::workloads;

namespace {

struct RowInfo
{
    std::string algorithm;
    std::string einsum;
    std::string formats;
    TmuProgram program;
};

std::string
summarize(const TmuProgram &p)
{
    std::set<std::string> traversals, streams, modes;
    std::map<std::string, int> callbacks;
    for (int l = 0; l < p.numLayers(); ++l) {
        const LayerDesc &layer = p.layer(l);
        modes.insert(groupModeName(layer.mode));
        for (const TuDesc &tu : layer.tus) {
            if (tu.streams.empty())
                continue;
            traversals.insert(traversalKindName(tu.kind));
            for (const StreamDesc &s : tu.streams) {
                if (s.kind != StreamKind::Ite)
                    streams.insert(streamKindName(s.kind));
            }
        }
        for (const CallbackDesc &cb : layer.callbacks) {
            ++callbacks[callbackEventName(cb.event)];
            for (int o : cb.operands) {
                if (o == kMskOperand)
                    streams.insert("msk");
            }
        }
    }
    auto join = [](const std::set<std::string> &xs) {
        std::string out;
        for (const auto &x : xs)
            out += (out.empty() ? "" : ",") + x;
        return out;
    };
    std::string cbs;
    for (const auto &[ev, n] : callbacks)
        cbs += (cbs.empty() ? "" : ",") +
               ev + "x" + std::to_string(n);
    return join(traversals) + " | " + join(streams) + " | " +
           join(modes) + " | " + cbs;
}

} // namespace

int
main()
{
    // Tiny shared operands (kept alive for the whole run).
    Rng rng(5);
    tensor::CsrGenConfig gc;
    gc.rows = 24;
    gc.cols = 24;
    gc.nnzPerRow = 4;
    gc.seed = 3;
    const auto a = tensor::randomCsr(gc);
    const auto at = tensor::transposeCsr(a);
    tensor::DenseVector dv(24);
    for (Index i = 0; i < 24; ++i)
        dv[i] = rng.nextValue(0.1, 1.0);
    tensor::DenseMatrix dm(24, 8);
    for (Index i = 0; i < 24; ++i)
        for (Index j = 0; j < 8; ++j)
            dm(i, j) = rng.nextValue(0.1, 1.0);
    const auto parts = tensor::splitCyclic(a, 4);
    const auto lower =
        tensor::lowerTriangle(tensor::rmatGraph(5, 4, 7));
    const auto coo = tensor::randomCooTensor({16, 24, 24}, 150, 0.0, 9);
    tensor::DenseMatrix z(16, 8, 0.0);
    const auto csfA = tensor::cooToCsf(coo);
    const auto csfB = tensor::cooToCsf(
        tensor::randomCooTensor({24, 24, 12}, 150, 0.0, 11));
    std::vector<Index> svi;
    std::vector<Value> svv;
    for (Index i = 0; i < 24; i += 2) {
        svi.push_back(i);
        svv.push_back(1.0);
    }
    const tensor::SparseVector sv(24, svi, svv);

    std::vector<RowInfo> rows;
    rows.push_back({"SpMV P0", "Z_i = A_ij B_j", "A=CSR",
                    buildSpmvP0(a, dv, 4, 0, a.rows())});
    rows.push_back({"SpMV P1", "Z_i = A_ij B_j", "A=CSR",
                    buildSpmvP1(a, dv, 4, 0, a.rows())});
    rows.push_back({"SpMSpV", "Z_i = A_ij B_j", "A,B=CSR",
                    buildSpmspv(a, sv, 0, a.rows())});
    rows.push_back({"SpMM P0", "Z_ij = A_ik B_kj", "A=CSR",
                    buildSpmmP0(a, dm, 4, 0, a.rows())});
    rows.push_back({"SpMM P1", "Z_ij = A_ik B_kj", "A=CSR",
                    buildSpmmP1(a, dm, 4, 0, a.rows())});
    rows.push_back({"SpMSpM P0", "Z_ij = A_ik B_kj", "A,B,Z=CSR",
                    buildSpmspmP0(a, at, 4, 0, a.rows())});
    rows.push_back({"SpMSpM P2", "Z_ij = A_ik B_kj", "A,B,Z=CSR",
                    buildSpmspmP2(a, at, 4, 0, a.rows())});
    rows.push_back({"SpKAdd", "Z_ij = sum_k A^k_ij", "A^k,Z=DCSR",
                    buildSpkadd(parts, 0, parts[0].rows())});
    rows.push_back({"PageRank", "Z_i = A_ij X_j Y_i", "A=CSR",
                    buildSpmvP1(a, dv, 4, 0, a.rows())});
    rows.push_back({"TriangleCount", "c = L_ik L^T_ki L_ij", "L=CSR",
                    buildTricount(lower, 0, lower.rows())});
    rows.push_back({"MTTKRP P1", "Z_ij = A_ikl B_kj C_lj", "A=COO",
                    buildMttkrpP1(coo, dm, dm, z, 4, 0, coo.nnz())});
    rows.push_back({"MTTKRP P2", "Z_ij = A_ikl B_kj C_lj", "A=COO",
                    buildMttkrpP2(coo, dm, dm, z, 4, 0, coo.nnz())});
    rows.push_back({"SpTC", "Z_ij = A_ikl B_lkj", "A,B=CSF",
                    buildSptcSymbolic(csfA, csfB, 0,
                                      csfA.numNodes(0))});
    rows.push_back({"SpTTV", "Z_ij = A_ijk B_k", "A=CSF",
                    buildSpttv(csfA, dv, 4, 0, csfA.numNodes(0))});
    rows.push_back({"SpTTM", "Z_ijl = A_ijk B_kl", "A=CSF",
                    buildSpttm(csfA, dm, 4, 0, csfA.numNodes(0))});

    bench::BenchReport rep("table4_mapping");
    std::printf("### Table 4 - kernel -> TMU hardware mapping\n");
    std::printf("# (introspected from the executable program "
                "builders; every program is run\n# through the "
                "functional interpreter as a liveness check)\n\n");

    TextTable t("Table 4");
    t.header({"algorithm", "einsum", "formats", "layers",
              "traversals | streams | groups | callbacks",
              "records"});
    for (auto &row : rows) {
        const auto records = interpretToVector(row.program);
        t.row({row.algorithm, row.einsum, row.formats,
               std::to_string(row.program.numLayers()),
               summarize(row.program), std::to_string(records.size())});
    }
    rep.print(t);
    return 0;
}
