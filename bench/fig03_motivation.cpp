/**
 * @file
 * Paper Fig. 3: normalized cycles spent stalling for the three stage
 * proxies (SpMV = traversal, SpMSpM = compute, SpAdd = merge) on an
 * HPC-class part (A64FX-like: modest OoO, high bandwidth) and a
 * datacenter part (Graviton3-like: aggressive OoO, big caches),
 * software baselines only.
 *
 * Expected shape (paper Sec. 3 findings 1-4): SpMV backend stalls
 * shrink on the big-cache core but frontend stalls remain; SpMSpM has
 * more committing cycles; SpAdd is frontend-dominated, worst on the
 * weaker OoO core.
 */

#include "bench_util.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

int
main()
{
    const Index div = matrixScale();
    const std::vector<std::pair<std::string, sim::SystemConfig>> archs =
        {{"a64fx-like",
          shrinkCaches(sim::SystemConfig::a64fxLike(), div)},
         {"graviton3-like",
          shrinkCaches(sim::SystemConfig::graviton3Like(), div)}};
    const std::vector<std::string> kernels = {"SpMV", "SpMSpM",
                                              "SpAdd"};
    const std::vector<std::string> inputs = {"M1", "M2", "M3",
                                             "M4", "M5", "M6"};

    BenchReport rep("fig03_motivation");
    printBanner("Fig. 3 - motivation: cycle stall breakdown",
                defaultConfig(matrixScale()));

    TextTable t("normalized cycles (fraction of total)");
    t.header({"kernel", "arch", "input", "commit", "frontend",
              "backend"});
    TextTable avg("Fig. 3 bars (mean over M1-M6)");
    avg.header({"kernel", "arch", "commit", "frontend", "backend"});

    for (const auto &kernel : kernels) {
        auto wl = makeWorkload(kernel);
        // arch -> accumulators
        std::vector<RunningStat> commit(archs.size()),
            frontend(archs.size()), backend(archs.size());
        for (const auto &input : inputs) {
            wl->prepare(input, scaleFor(*wl));
            for (size_t a = 0; a < archs.size(); ++a) {
                RunConfig cfg;
                cfg.system = archs[a].second;
                // Profiling-style runs: two active cores, so neither
                // machine is bandwidth-starved and the cache/OoO
                // contrast (the point of Fig. 3) dominates.
                cfg.system.cores = 2;
                cfg.mode = Mode::Baseline;
                const RunResult r = wl->run(cfg);
                t.row({kernel, archs[a].first, input,
                       TextTable::num(r.sim.commitFrac(), 3),
                       TextTable::num(r.sim.frontendFrac(), 3),
                       TextTable::num(r.sim.backendFrac(), 3)});
                commit[a].add(r.sim.commitFrac());
                frontend[a].add(r.sim.frontendFrac());
                backend[a].add(r.sim.backendFrac());
            }
        }
        for (size_t a = 0; a < archs.size(); ++a) {
            avg.row({kernel, archs[a].first,
                     TextTable::num(commit[a].mean(), 3),
                     TextTable::num(frontend[a].mean(), 3),
                     TextTable::num(backend[a].mean(), 3)});
        }
    }
    rep.print(t);
    std::printf("\n");
    rep.print(avg);
    return 0;
}
