/**
 * @file
 * Paper Fig. 12: Roofline models.
 *  (a) all FP workloads at their geomean input, baseline vs TMU;
 *  (b) SpMV over all inputs;
 *  (c) SpMSpM over all inputs, plus the nnz/row = {1, 8, 64} synthetic
 *      compute ceilings;
 *  (d) SpKAdd over all inputs.
 *
 * Arithmetic intensity = FLOPs / DRAM bytes moved; the bandwidth roof
 * is 4 x 37.5 GB/s and the compute roof the cores' peak FMA rate
 * (Table 5). Expected shape: baselines sit far below the bandwidth
 * roof; TMU points move close to it (SpMV nearly saturates);
 * SpMSpM stays compute-bound under its per-nnz/row ceiling.
 */

#include "bench_util.hpp"

#include "tensor/generate.hpp"
#include "workloads/wl_spmspm.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

namespace {

double
intensity(const sim::SimResult &r)
{
    const double bytes = static_cast<double>(r.dram.readBytes) +
                         static_cast<double>(r.dram.writeBytes);
    return bytes > 0.0 ? static_cast<double>(r.total.flops) / bytes
                       : 0.0;
}

void
addPoint(TextTable &t, const std::string &wl, const std::string &input,
         const char *path, const sim::SimResult &r)
{
    t.row({wl, input, path, TextTable::num(intensity(r), 4),
           TextTable::num(r.gflops, 2),
           TextTable::num(r.achievedGBs, 1)});
}

} // namespace

int
main()
{
    BenchReport rep("fig12_roofline");
    RunConfig cfg = defaultConfig(matrixScale());
    printBanner("Fig. 12 - roofline models", cfg);
    std::printf("Roofs: DRAM %.1f GB/s, compute %.1f GFLOP/s\n\n",
                cfg.system.mem.peakGBs(), cfg.system.peakGflops());

    // (a) all FP workloads, one representative input each (TC and
    // SpTC do no floating-point work, as in the paper).
    {
        TextTable t("Fig. 12a - all workloads (AI, GFLOP/s, GB/s)");
        t.header({"workload", "input", "path", "AI", "GFLOP/s",
                  "GB/s"});
        for (const auto &name : allWorkloads()) {
            if (name == "TC" || name == "SpTC")
                continue;
            auto wl = makeWorkload(name);
            const std::string input = wl->inputs()[2 % wl->inputs().size()];
            wl->prepare(input, scaleFor(*wl));
            const PairResult pr = runPair(*wl, defaultConfig(scaleFor(*wl)));
            addPoint(t, name, input, "base", pr.base.sim);
            addPoint(t, name, input, "tmu", pr.tmu.sim);
        }
        rep.print(t);
        std::printf("\n");
    }

    // (b) SpMV and (d) SpKAdd over every input.
    for (const char *name : {"SpMV", "SpKAdd"}) {
        TextTable t(std::string("Fig. 12") +
                    (std::string(name) == "SpMV" ? "b" : "d") + " - " +
                    name + " per input");
        t.header({"workload", "input", "path", "AI", "GFLOP/s",
                  "GB/s"});
        auto wl = makeWorkload(name);
        for (const auto &input : wl->inputs()) {
            wl->prepare(input, scaleFor(*wl));
            const PairResult pr = runPair(*wl, cfg);
            addPoint(t, name, input, "base", pr.base.sim);
            addPoint(t, name, input, "tmu", pr.tmu.sim);
        }
        rep.print(t);
        std::printf("\n");
    }

    // (c) SpMSpM per input + synthetic nnz/row ceilings.
    {
        TextTable t("Fig. 12c - SpMSpM per input");
        t.header({"workload", "input", "path", "AI", "GFLOP/s",
                  "GB/s"});
        auto wl = makeWorkload("SpMSpM");
        for (const auto &input : wl->inputs()) {
            wl->prepare(input, scaleFor(*wl));
            const PairResult pr = runPair(*wl, cfg);
            addPoint(t, "SpMSpM", input, "base", pr.base.sim);
            addPoint(t, "SpMSpM", input, "tmu", pr.tmu.sim);
        }
        rep.print(t);
        std::printf("\n");

        TextTable c("Fig. 12c ceilings - synthetic fixed nnz/row, "
                    "TMU-accelerated (ideal locality)");
        c.header({"nnz/row", "AI", "GFLOP/s", "GB/s"});
        for (const Index n : {1, 8, 64}) {
            // Fixed-n matrices with columns {0..n-1}: ideal
            // spatio-temporal locality (paper Sec. 7.1).
            SpmspmWorkload probe;
            probe.prepareSynthetic(4096, n);
            RunConfig pc = cfg;
            pc.mode = Mode::Tmu;
            const sim::SimResult r = probe.run(pc).sim;
            c.row({std::to_string(n), TextTable::num(intensity(r), 4),
                   TextTable::num(r.gflops, 2),
                   TextTable::num(r.achievedGBs, 1)});
        }
        rep.print(c);
    }
    return 0;
}
