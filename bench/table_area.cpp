/**
 * @file
 * Paper Sec. 6 area analysis: TMU area from the analytical model
 * calibrated against the published GF-22nm synthesis (0.0080 mm^2 per
 * lane, 0.0704 mm^2 total, 1.52% of a Neoverse N1 core), plus a
 * lanes x storage sweep matching the Fig. 14 design space.
 */

#include <cstdio>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "tmu/area.hpp"

using namespace tmu;
using namespace tmu::engine;

int
main()
{
    bench::BenchReport rep("table_area");
    std::printf("### Area analysis (analytical model, GF 22nm FD-SOI "
                "calibration)\n\n");

    const AreaEstimate paper = estimateArea(8, 2048);
    std::printf("Evaluated design (8 lanes x 2 KiB): %s\n",
                describeArea(paper).c_str());
    std::printf("Paper reference: lane 0.0080 mm2, total 0.0704 mm2, "
                "1.52%% of an N1 core\n\n");

    TextTable t("area across the Fig. 14 design space");
    t.header({"lanes", "per-lane B", "total KiB", "lane mm2",
              "total mm2", "% of N1 core"});
    for (const int lanes : {2, 4, 8}) {
        for (const std::size_t total :
             {4096u, 8192u, 16384u, 32768u}) {
            const std::size_t perLane =
                total / static_cast<std::size_t>(lanes);
            const AreaEstimate a = estimateArea(lanes, perLane);
            t.row({std::to_string(lanes), std::to_string(perLane),
                   std::to_string(total / 1024),
                   TextTable::num(a.laneMm2, 4),
                   TextTable::num(a.totalMm2, 4),
                   TextTable::num(a.pctOfN1Core, 2)});
        }
    }
    rep.print(t);
    return 0;
}
