/**
 * @file
 * Paper Fig. 11: per-workload, per-input normalized cycle breakdown
 * (committing / frontend stalls / backend stalls) for the TMU (T) and
 * the baseline (B), with the cores' average load-to-use latency.
 *
 * Expected shape: the TMU drastically reduces backend stalls on
 * memory-intensive workloads and almost eliminates frontend stalls on
 * merge-intensive ones; load-to-use latency collapses (e.g. 67 -> 23
 * cycles for SpMV/M1 in the paper) because the core's loads become
 * L2-resident outQ reads.
 */

#include "bench_util.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

int
main()
{
    BenchReport rep("fig11_breakdown");
    RunConfig cfg = defaultConfig(matrixScale());
    printBanner("Fig. 11 - cycle breakdown and load-to-use latency",
                cfg);

    TextTable t("normalized cycles: B = baseline, T = TMU");
    t.header({"workload", "input", "path", "commit", "frontend",
              "backend", "(outQ-wait)", "ld2use"});

    auto waitFrac = [](const sim::SimResult &r) {
        return r.total.cycles
                   ? static_cast<double>(r.total.supplyWaitCycles) /
                         static_cast<double>(r.total.cycles)
                   : 0.0;
    };
    for (const PairCell &c : runPairSweep(allWorkloads(), benchJobs())) {
        const PairResult &pr = c.pr;
        t.row({c.workload, c.input, "B",
               TextTable::num(pr.base.sim.commitFrac(), 3),
               TextTable::num(pr.base.sim.frontendFrac(), 3),
               TextTable::num(pr.base.sim.backendFrac(), 3),
               TextTable::num(waitFrac(pr.base.sim), 3),
               TextTable::num(pr.base.sim.total.avgLoadToUse(), 1)});
        t.row({c.workload, c.input, "T",
               TextTable::num(pr.tmu.sim.commitFrac(), 3),
               TextTable::num(pr.tmu.sim.frontendFrac(), 3),
               TextTable::num(pr.tmu.sim.backendFrac(), 3),
               TextTable::num(waitFrac(pr.tmu.sim), 3),
               TextTable::num(pr.tmu.sim.total.avgLoadToUse(), 1)});
    }
    rep.print(t);
    std::printf("\nNote: in TMU runs, backend stalls include the core "
                "waiting for the engine to fill\nthe next outQ chunk "
                "(read-to-write ratio < 1, Fig. 13).\n");
    return 0;
}
