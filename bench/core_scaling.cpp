/**
 * @file
 * Core-count scaling: SpMV swept from 8 to 64 simulated cores on
 * matching mesh presets (4x4, 8x2, 8x4, 8x8), crossed with the three
 * partition strategies (rows, nnz, tiles2d). Two questions:
 *
 *  1. Does the simulated system keep speeding up past the paper's
 *     8-core Table-5 machine, and at what parallel efficiency?
 *  2. Which partition strategy holds the per-core load balanced as
 *     the core count grows? On Zipf-skewed matrices (M3, M6) naive
 *     row-splitting concentrates the heavy head rows on a few cores;
 *     nnz-balanced splitting must keep peak/mean nnz near 1.0.
 *
 * The imbalance numbers come from the run's own stat registry
 * (cores.balance.imbalanceRatio), so the table reflects exactly what
 * the simulator executed, not a side recomputation.
 */

#include "bench_util.hpp"

#include "workloads/partition.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

namespace {

/** Mesh preset per simulated core count (cores fill from row 0). */
struct Topo
{
    int cores;
    int meshW;
    int meshH;
};

const Topo kTopos[] = {
    {8, 4, 4},  // the paper's Table-5 machine
    {16, 8, 2},
    {32, 8, 4},
    {64, 8, 8},
};

std::string
meshName(const Topo &t)
{
    return std::to_string(t.meshW) + "x" + std::to_string(t.meshH);
}

RunConfig
configFor(const Topo &t, PartitionKind kind)
{
    RunConfig cfg = defaultConfig(matrixScale());
    cfg.system.cores = t.cores;
    cfg.system.mem.meshW = t.meshW;
    cfg.system.mem.meshH = t.meshH;
    cfg.partition = kind;
    return cfg;
}

double
statF(const RunResult &r, const char *name)
{
    const stats::SnapshotEntry *e = r.stats.find(name);
    return e != nullptr ? e->value() : 0.0;
}

/** One (topology, strategy, input) cell; filled by the sweep pool. */
struct Cell
{
    Topo topo{};
    PartitionKind kind{};
    std::string input;
    PairResult pr;
    double imbalance = 0.0;
};

} // namespace

int
main()
{
    BenchReport rep("corescale");
    printBanner("Core-count scaling, 8 -> 64 cores x partition "
                "strategy (SpMV)",
                defaultConfig(matrixScale()));

    // Phase A: scaling on the skewed headline input M3 — every
    // topology x strategy, paired baseline+TMU.
    std::vector<Cell> scal;
    for (const Topo &t : kTopos) {
        for (const PartitionKind k : partitionKinds()) {
            Cell c;
            c.topo = t;
            c.kind = k;
            c.input = "M3";
            scal.push_back(std::move(c));
        }
    }
    // Phase B: load balance at 64 cores across skew classes. M1 is
    // banded with fixed-length rows (row-split is already balanced);
    // M3 and M6 are Zipf-skewed.
    std::vector<Cell> bal;
    for (const char *input : {"M1", "M3", "M6"}) {
        for (const PartitionKind k : partitionKinds()) {
            Cell c;
            c.topo = kTopos[3]; // 64 cores, 8x8
            c.kind = k;
            c.input = input;
            bal.push_back(std::move(c));
        }
    }

    std::vector<Cell *> cells;
    for (Cell &c : scal)
        cells.push_back(&c);
    for (Cell &c : bal)
        cells.push_back(&c);
    parallelFor(cells.size(), benchJobs(), [&](std::size_t i) {
        Cell &c = *cells[i];
        const auto wl = makeWorkload("SpMV");
        wl->prepare(c.input, matrixScale());
        c.pr = runPair(*wl, configFor(c.topo, c.kind));
        c.imbalance = statF(c.pr.tmu, "cores.balance.imbalanceRatio");
    });

    TextTable st("SpMV/M3 cycles, 8 -> 64 cores x partition strategy");
    st.header({"cores", "mesh", "partition", "base cycles",
               "tmu cycles", "speedup", "imbalance"});
    for (const Cell &c : scal) {
        st.row({std::to_string(c.topo.cores), meshName(c.topo),
                partitionKindName(c.kind),
                std::to_string(c.pr.base.sim.cycles),
                std::to_string(c.pr.tmu.sim.cycles),
                TextTable::num(c.pr.speedup(), 2),
                TextTable::num(c.imbalance, 3)});
    }
    rep.print(st);

    // Parallel-efficiency summary: cycles(8) / cycles(64) per strategy
    // (ideal = 8.0). Cells come back in enumeration order, so strategy
    // s at core preset p is scal[p * kinds + s].
    const std::size_t kinds = partitionKinds().size();
    TextTable eff("TMU cycle reduction 8 -> 64 cores (ideal 8.00)");
    eff.header({"partition", "8-core cycles", "64-core cycles",
                "reduction"});
    for (std::size_t s = 0; s < kinds; ++s) {
        const Cell &c8 = scal[s];
        const Cell &c64 = scal[3 * kinds + s];
        const double red =
            c64.pr.tmu.sim.cycles
                ? static_cast<double>(c8.pr.tmu.sim.cycles) /
                      static_cast<double>(c64.pr.tmu.sim.cycles)
                : 0.0;
        eff.row({partitionKindName(c8.kind),
                 std::to_string(c8.pr.tmu.sim.cycles),
                 std::to_string(c64.pr.tmu.sim.cycles),
                 TextTable::num(red, 2)});
        rep.note(std::string("scaling.") + partitionKindName(c8.kind),
                 TextTable::num(red, 2));
    }
    rep.print(eff);

    TextTable bt("per-core nnz imbalance (peak/mean) at 64 cores");
    bt.header({"input", "skew", "partition", "imbalance",
               "tmu cycles"});
    for (const Cell &c : bal) {
        const bool skewed = c.input != "M1";
        bt.row({c.input, skewed ? "zipf" : "banded",
                partitionKindName(c.kind),
                TextTable::num(c.imbalance, 3),
                std::to_string(c.pr.tmu.sim.cycles)});
        rep.note("imbalance.cores64." + c.input + "." +
                     partitionKindName(c.kind),
                 TextTable::num(c.imbalance, 3));
    }
    rep.print(bt);

    // Acceptance: nnz-balanced must stay within 10% of perfect on
    // every input, including the one where naive row-splitting
    // degrades past 1.5x (the demonstration input: Zipf skew heavy
    // enough that equal-row chunks go badly wrong at 64 cores).
    bool nnzOk = true, rowsDegrade = false, verified = true;
    for (const Cell &c : bal) {
        verified = verified && c.pr.verified();
        if (c.kind == PartitionKind::NnzBalanced)
            nnzOk = nnzOk && c.imbalance <= 1.10;
        if (c.kind == PartitionKind::Rows && c.input != "M1")
            rowsDegrade = rowsDegrade || c.imbalance > 1.5;
    }
    for (const Cell &c : scal)
        verified = verified && c.pr.verified();
    const bool ok = nnzOk && rowsDegrade && verified;
    rep.note("acceptance.nnz_le_1.10", nnzOk ? "yes" : "no");
    rep.note("acceptance.rows_gt_1.5_on_skew",
             rowsDegrade ? "yes" : "no");
    std::printf("balance acceptance (nnz <= 1.10 on all inputs, "
                "row-split > 1.5 on a skewed input): %s\n",
                ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
