/**
 * @file
 * Shared plumbing for the figure/table benches: input scaling knobs,
 * paired baseline/TMU runs, and geomean collection.
 *
 * Every bench binary regenerates one paper artifact; absolute numbers
 * come from the simulator, the *shape* (who wins, by what factor,
 * where crossovers fall) is what reproduces the paper. Scale knobs:
 *   TMU_SCALE_MAT  divisor for matrix surrogates (default 128)
 *   TMU_SCALE_TEN  divisor for tensor surrogates (default 64)
 */

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "common/writers.hpp"
#include "sim/sweep.hpp"
#include "workloads/registry.hpp"

namespace tmu::bench {

inline Index
envScale(const char *name, Index def)
{
    if (const char *s = std::getenv(name)) {
        const Index v = std::atoll(s);
        if (v >= 1)
            return v;
    }
    return def;
}

inline Index
matrixScale()
{
    return envScale("TMU_SCALE_MAT", 128);
}

inline Index
tensorScale()
{
    return envScale("TMU_SCALE_TEN", 64);
}

/** Scale divisor appropriate for a workload's input family. */
inline Index
scaleFor(const workloads::Workload &wl)
{
    return wl.inputs().front()[0] == 'T' ? tensorScale() : matrixScale();
}

/**
 * Shrink the cache hierarchy by the input scale divisor (floors keep
 * every cache structurally valid). The evaluation scales inputs down
 * by TMU_SCALE_*; capacity-to-working-set ratios — which the paper's
 * effects key on (gathers missing caches, workspaces thrashing) — are
 * preserved by shrinking the machine with the data. Latencies, widths
 * and MSHR counts stay at their Table 5 values.
 */
inline sim::SystemConfig
shrinkCaches(sim::SystemConfig cfg, Index div)
{
    auto shrink = [&](std::uint64_t bytes, std::uint64_t floor) {
        return std::max<std::uint64_t>(
            floor, bytes / static_cast<std::uint64_t>(div));
    };
    cfg.l1.sizeBytes = shrink(cfg.l1.sizeBytes, 2048);
    cfg.l2.sizeBytes = shrink(cfg.l2.sizeBytes, 2048);
    cfg.llcSlice.sizeBytes = shrink(cfg.llcSlice.sizeBytes, 4096);
    return cfg;
}

/** The default Table-5 run configuration at the bench's input scale. */
inline workloads::RunConfig
defaultConfig(Index scaleDiv)
{
    workloads::RunConfig cfg;
    cfg.system = shrinkCaches(cfg.system, scaleDiv);
    return cfg;
}

/** One baseline+TMU pair on a prepared workload. */
struct PairResult
{
    workloads::RunResult base;
    workloads::RunResult tmu;

    double
    speedup() const
    {
        return tmu.sim.cycles
                   ? static_cast<double>(base.sim.cycles) /
                         static_cast<double>(tmu.sim.cycles)
                   : 0.0;
    }

    bool verified() const { return base.verified && tmu.verified; }
};

inline PairResult
runPair(workloads::Workload &wl, workloads::RunConfig cfg)
{
    PairResult pr;
    cfg.mode = workloads::Mode::Baseline;
    pr.base = wl.run(cfg);
    cfg.mode = workloads::Mode::Tmu;
    pr.tmu = wl.run(cfg);
    if (!pr.verified()) {
        std::fprintf(stderr,
                     "WARNING: %s failed verification (base=%d tmu=%d)\n",
                     wl.name().c_str(), pr.base.verified,
                     pr.tmu.verified);
    }
    return pr;
}

/**
 * Host threads for bench sweeps: TMU_BENCH_JOBS (default 1).
 * 0 asks for one worker per hardware thread, like `tmu_run --jobs 0`.
 */
inline int
benchJobs()
{
    if (const char *s = std::getenv("TMU_BENCH_JOBS")) {
        const int v = std::atoi(s);
        if (v >= 1)
            return v;
        if (v == 0 && s[0] == '0') // explicit 0, not parse garbage
            return sim::SweepRunner::resolveJobs(0);
    }
    return 1;
}

/**
 * Run fn(0..count-1) on a SweepRunner pool. Tasks must be independent
 * and write into caller-owned, index-addressed storage; consuming the
 * results by index afterwards keeps every bench table byte-identical
 * for any job count (see docs/PARALLEL_SWEEPS.md).
 */
inline void
parallelFor(std::size_t count, int jobs,
            const std::function<void(std::size_t)> &fn)
{
    sim::SweepRunner(jobs).run(count, fn);
}

/** One (workload, input) cell of a paired sweep. */
struct PairCell
{
    std::string workload;
    std::string input;
    workloads::Workload::Class cls{};
    PairResult pr;
};

/**
 * The common figure-bench sweep: baseline+TMU for every input of every
 * named workload, on a SweepRunner pool. Each task owns a private
 * Workload instance (prepare() fills per-instance input state), so
 * tasks never share mutable data; cells come back in (workload x
 * input) enumeration order no matter which pool thread ran them.
 */
inline std::vector<PairCell>
runPairSweep(const std::vector<std::string> &names, int jobs)
{
    std::vector<PairCell> cells;
    for (const auto &name : names) {
        const auto wl = workloads::makeWorkload(name);
        for (const auto &input : wl->inputs()) {
            PairCell c;
            c.workload = name;
            c.input = input;
            c.cls = wl->workloadClass();
            cells.push_back(std::move(c));
        }
    }
    parallelFor(cells.size(), jobs, [&](std::size_t i) {
        PairCell &c = cells[i];
        const auto wl = workloads::makeWorkload(c.workload);
        wl->prepare(c.input, scaleFor(*wl));
        c.pr = runPair(*wl, defaultConfig(scaleFor(*wl)));
    });
    return cells;
}

/**
 * Machine-readable mirror of one bench binary's printed tables.
 *
 * Construct one per binary, route every table through print(): the
 * table renders to stdout exactly as before AND is recorded. On save()
 * (called by the destructor if needed) the recorded tables are written
 * to BENCH_<name>.json — same cell strings as the printed output, so
 * the JSON always matches the text.
 *
 * Environment: TMU_BENCH_JSON=0 disables the file; TMU_BENCH_JSON_DIR
 * sets the output directory (default: the working directory).
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}
    ~BenchReport() { save(); }

    BenchReport(const BenchReport &) = delete;
    BenchReport &operator=(const BenchReport &) = delete;

    /** Print @p t to stdout and record it for the JSON report. */
    void
    print(const TextTable &t)
    {
        t.print();
        tables_.push_back(t);
    }

    /** Attach a scalar result line (e.g. a geomean) to the report. */
    void
    note(const std::string &key, const std::string &value)
    {
        notes_.emplace_back(key, value);
    }

    /** Write BENCH_<name>.json. Idempotent. */
    bool
    save()
    {
        if (saved_)
            return true;
        saved_ = true;
        if (const char *e = std::getenv("TMU_BENCH_JSON");
            e != nullptr && std::string(e) == "0")
            return false;
        std::string dir = ".";
        if (const char *d = std::getenv("TMU_BENCH_JSON_DIR"))
            dir = d;

        stats::JsonWriter jw;
        jw.beginObject();
        jw.key("bench").value(name_);
        jw.key("notes").beginObject();
        for (const auto &[k, v] : notes_)
            jw.key(k).value(v);
        jw.endObject();
        jw.key("tables").beginArray();
        for (const TextTable &t : tables_) {
            jw.beginObject();
            jw.key("title").value(t.title());
            jw.key("header").beginArray();
            for (const std::string &h : t.headerCells())
                jw.value(h);
            jw.endArray();
            jw.key("rows").beginArray();
            for (const auto &r : t.rowCells()) {
                jw.beginArray();
                for (const std::string &c : r)
                    jw.value(c);
                jw.endArray();
            }
            jw.endArray();
            jw.endObject();
        }
        jw.endArray();
        jw.endObject();

        const std::string path = dir + "/BENCH_" + name_ + ".json";
        if (!stats::saveTextFile(path, jw.str()))
            return false;
        std::printf("wrote %s\n", path.c_str());
        return true;
    }

  private:
    std::string name_;
    std::vector<TextTable> tables_;
    std::vector<std::pair<std::string, std::string>> notes_;
    bool saved_ = false;
};

/** Print the Table-5 parameter banner every bench leads with. */
inline void
printBanner(const char *title, const workloads::RunConfig &cfg)
{
    std::printf("### %s\n", title);
    std::printf("# %s\n", cfg.system.describe().c_str());
    std::printf("# TMU: %d lanes, %zu B/lane, %d outstanding, "
                "%zu B outQ chunks\n",
                cfg.tmu.lanes, cfg.tmu.perLaneBytes,
                cfg.tmu.maxOutstanding, cfg.tmu.chunkBytes);
    std::printf("# scale: matrices 1/%lld, tensors 1/%lld "
                "(TMU_SCALE_MAT / TMU_SCALE_TEN)\n\n",
                static_cast<long long>(matrixScale()),
                static_cast<long long>(tensorScale()));
}

} // namespace tmu::bench
