/**
 * @file
 * google-benchmark microbenchmarks for the library substrate itself
 * (host-native performance, not simulated time): reference kernels,
 * merge iterators, format converters, the functional interpreter and
 * the cycle engine's simulation rate.
 */

#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "kernels/spadd.hpp"
#include "kernels/spmspm.hpp"
#include "kernels/spmv.hpp"
#include "tensor/convert.hpp"
#include "tensor/generate.hpp"
#include "tensor/merge.hpp"
#include "tmu/engine.hpp"
#include "tmu/functional.hpp"
#include "workloads/programs.hpp"

using namespace tmu;

namespace {

tensor::CsrMatrix
benchMatrix(Index rows, double nnzPerRow)
{
    tensor::CsrGenConfig cfg;
    cfg.rows = rows;
    cfg.cols = rows;
    cfg.nnzPerRow = nnzPerRow;
    cfg.seed = 77;
    return tensor::randomCsr(cfg);
}

void
BM_SpmvRef(benchmark::State &state)
{
    const auto a = benchMatrix(state.range(0), 8);
    tensor::DenseVector b(a.cols(), 1.0);
    for (auto _ : state) {
        auto x = kernels::spmvRef(a, b);
        benchmark::DoNotOptimize(x.data());
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_SpmvRef)->Arg(1 << 12)->Arg(1 << 15);

void
BM_SpmspmRef(benchmark::State &state)
{
    const auto a = benchMatrix(state.range(0), 6);
    const auto at = tensor::transposeCsr(a);
    for (auto _ : state) {
        auto z = kernels::spmspmRef(a, at);
        benchmark::DoNotOptimize(z.nnz());
    }
}
BENCHMARK(BM_SpmspmRef)->Arg(1 << 10)->Arg(1 << 12);

void
BM_DisjunctiveMerge(benchmark::State &state)
{
    Rng rng(5);
    std::vector<tensor::FiberView> views;
    std::vector<std::vector<Index>> idxs(8);
    std::vector<std::vector<Value>> vals(8);
    for (int f = 0; f < 8; ++f) {
        for (Index c = 0; c < state.range(0); ++c) {
            if (rng.nextBool(0.5)) {
                idxs[static_cast<size_t>(f)].push_back(c);
                vals[static_cast<size_t>(f)].push_back(1.0);
            }
        }
        views.push_back({idxs[static_cast<size_t>(f)],
                         vals[static_cast<size_t>(f)]});
    }
    for (auto _ : state) {
        Value acc = 0.0;
        tensor::disjunctiveMerge(
            std::span<const tensor::FiberView>(views),
            [&](Index, LaneMask m, auto get) {
                for (unsigned l = 0; l < 8; ++l) {
                    if (m.test(l))
                        acc += get(l);
                }
            });
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_DisjunctiveMerge)->Arg(1 << 10)->Arg(1 << 14);

void
BM_CooToCsr(benchmark::State &state)
{
    Rng rng(9);
    tensor::CooTensor coo({state.range(0), state.range(0)});
    for (Index e = 0; e < state.range(0) * 8; ++e) {
        coo.push2(rng.nextIndex(0, state.range(0)),
                  rng.nextIndex(0, state.range(0)), 1.0);
    }
    coo.sortAndCombine();
    for (auto _ : state) {
        auto csr = tensor::cooToCsr(coo);
        benchmark::DoNotOptimize(csr.nnz());
    }
}
BENCHMARK(BM_CooToCsr)->Arg(1 << 12)->Arg(1 << 15);

void
BM_FunctionalInterpreterSpmv(benchmark::State &state)
{
    const auto a = benchMatrix(state.range(0), 8);
    tensor::DenseVector b(a.cols(), 1.0);
    const auto p = workloads::buildSpmvP1(a, b, 8, 0, a.rows());
    for (auto _ : state) {
        std::uint64_t n = 0;
        engine::interpret(p,
                          [&](const engine::OutqRecord &) { ++n; });
        benchmark::DoNotOptimize(n);
    }
    state.SetItemsProcessed(state.iterations() * a.nnz());
}
BENCHMARK(BM_FunctionalInterpreterSpmv)->Arg(1 << 12);

void
BM_TimingEngineSpmv(benchmark::State &state)
{
    // Simulation rate of the cycle engine (simulated cycles/second
    // reported as items).
    const auto a = benchMatrix(state.range(0), 8);
    tensor::DenseVector b(a.cols(), 1.0);
    const auto p = workloads::buildSpmvP1(a, b, 8, 0, a.rows());
    sim::SystemConfig sc = sim::SystemConfig::neoverseN1();
    sc.cores = 1;
    for (auto _ : state) {
        sim::MemorySystem mem(sc);
        engine::TmuEngine eng(0, engine::EngineConfig{}, mem, p);
        Cycle now = 0;
        engine::OutqRecord rec;
        Addr addr;
        while (true) {
            ++now;
            const bool active = eng.tick(now);
            while (eng.popRecord(now, rec, addr)) {
            }
            if (!active && eng.allConsumed())
                break;
        }
        benchmark::DoNotOptimize(now);
        state.counters["sim_cycles"] = static_cast<double>(now);
    }
}
BENCHMARK(BM_TimingEngineSpmv)->Arg(1 << 11);

} // namespace

BENCHMARK_MAIN();
