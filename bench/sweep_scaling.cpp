/**
 * @file
 * Parallel sweep scaling: the four headline workloads (SpMV, SpMSpM,
 * SpKAdd, PR) run as one paired baseline+TMU sweep on 1 and 4 host
 * threads. Reports wall-clock per job count, per-task wall times, the
 * speedup over the serial sweep, and a cycle-exactness check between
 * the two runs — the SweepRunner contract is that simulated results
 * are byte-identical for any job count, so the only thing allowed to
 * change is the wall clock.
 *
 * Honesty rule: a speedup is only claimed when the host can actually
 * run the jobs concurrently. When hardware_concurrency() < jobs the
 * 4-way wall clock mostly measures oversubscription, so the table and
 * the machine-readable notes say "n/a" instead of a meaningless ratio
 * near 1x.
 */

#include "bench_util.hpp"

#include <chrono>

#include "workloads/partition.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

namespace {

struct Cell
{
    std::string workload;
    std::string input;
    double taskMs = 0.0; //!< this task's own wall time in the sweep
    PairResult pr;
};

/** Run the paired sweep on @p jobs threads; returns wall-clock ms. */
double
timedSweep(const std::vector<std::string> &names, int jobs,
           std::vector<Cell> &cells)
{
    cells.clear();
    for (const auto &name : names) {
        Cell c;
        c.workload = name;
        c.input = makeWorkload(name)->inputs().front();
        cells.push_back(std::move(c));
    }
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(cells.size(), jobs, [&](std::size_t i) {
        Cell &c = cells[i];
        const auto s0 = std::chrono::steady_clock::now();
        auto wl = makeWorkload(c.workload);
        wl->prepare(c.input, scaleFor(*wl));
        c.pr = runPair(*wl, defaultConfig(scaleFor(*wl)));
        c.taskMs = std::chrono::duration<double, std::milli>(
                       std::chrono::steady_clock::now() - s0)
                       .count();
    });
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main()
{
    BenchReport rep("sweep");
    printBanner("Parallel sweep scaling (--jobs 1 vs --jobs 4)",
                defaultConfig(matrixScale()));

    const std::vector<std::string> names = {"SpMV", "SpMSpM", "SpKAdd",
                                            "PR"};
    std::vector<Cell> serial, parallel4;
    const double ms1 = timedSweep(names, 1, serial);
    const double ms4 = timedSweep(names, 4, parallel4);

    const unsigned hw = sim::SweepRunner::hardwareJobs();
    // Oversubscribed hosts cannot demonstrate sweep-level parallelism;
    // report the raw wall clocks but refuse to call the ratio a
    // speedup.
    const bool canClaim = hw >= 4;
    const std::string speedup4 =
        canClaim ? TextTable::num(ms4 > 0.0 ? ms1 / ms4 : 0.0, 2)
                 : "n/a";

    TextTable t("sweep wall clock, 4 workloads, baseline+tmu each");
    t.header({"jobs", "wall ms", "speedup"});
    t.row({"1", TextTable::num(ms1, 1), "1.00"});
    t.row({"4", TextTable::num(ms4, 1), speedup4});
    rep.print(t);
    std::printf("host hardware_concurrency: %u%s\n\n", hw,
                canClaim ? ""
                         : " (< 4: speedup not claimed, the 4-way "
                           "sweep is oversubscribed)");

    // Per-task wall times: the sweep's critical path is its slowest
    // task, so flat scaling with one dominant task is expected, not a
    // SweepRunner defect.
    TextTable pt("per-task wall time (ms)");
    pt.header({"workload", "jobs=1", "jobs=4"});
    for (std::size_t i = 0; i < serial.size(); ++i) {
        pt.row({serial[i].workload,
                TextTable::num(serial[i].taskMs, 1),
                TextTable::num(parallel4[i].taskMs, 1)});
        rep.note("task_ms.jobs1." + serial[i].workload,
                 TextTable::num(serial[i].taskMs, 1));
        rep.note("task_ms.jobs4." + parallel4[i].workload,
                 TextTable::num(parallel4[i].taskMs, 1));
    }
    rep.print(pt);

    // Determinism: the simulated cycle counts must not depend on the
    // job count. Any mismatch is a bug in task isolation.
    bool identical = serial.size() == parallel4.size();
    TextTable d("jobs=1 vs jobs=4 simulated cycles");
    d.header({"workload", "input", "base cycles", "tmu cycles",
              "match"});
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        const Cell &a = serial[i];
        const Cell &b = parallel4[i];
        const bool match =
            a.pr.base.sim.cycles == b.pr.base.sim.cycles &&
            a.pr.tmu.sim.cycles == b.pr.tmu.sim.cycles;
        identical = identical && match;
        d.row({a.workload, a.input,
               std::to_string(a.pr.base.sim.cycles),
               std::to_string(a.pr.tmu.sim.cycles),
               match ? "yes" : "NO"});
    }
    rep.print(d);
    std::printf("deterministic across job counts: %s\n",
                identical ? "yes" : "NO");

    // Per-strategy load balance: the same four workloads once per
    // partition strategy (TMU path only), reading the run's own
    // cores.balance.imbalanceRatio stat. On the Table-5 8-core
    // machine the strategies are close; the spread widens with the
    // core count (see core_scaling / BENCH_corescale.json).
    const auto strategies = partitionKinds();
    std::vector<double> imb(names.size() * strategies.size(), 0.0);
    parallelFor(imb.size(), 4, [&](std::size_t i) {
        const std::string &name = names[i / strategies.size()];
        auto wl = makeWorkload(name);
        wl->prepare(wl->inputs().front(), scaleFor(*wl));
        RunConfig cfg = defaultConfig(scaleFor(*wl));
        cfg.mode = Mode::Tmu;
        cfg.partition = strategies[i % strategies.size()];
        const RunResult r = wl->run(cfg);
        const stats::SnapshotEntry *e =
            r.stats.find("cores.balance.imbalanceRatio");
        imb[i] = e != nullptr ? e->value() : 0.0;
    });
    TextTable lb("per-core nnz imbalance (peak/mean) by partition "
                 "strategy");
    std::vector<std::string> lbHeader{"workload"};
    for (const PartitionKind k : strategies)
        lbHeader.push_back(partitionKindName(k));
    lb.header(lbHeader);
    for (std::size_t w = 0; w < names.size(); ++w) {
        std::vector<std::string> row{names[w]};
        for (std::size_t s = 0; s < strategies.size(); ++s) {
            const double v = imb[w * strategies.size() + s];
            row.push_back(TextTable::num(v, 3));
            rep.note("imbalance." + names[w] + "." +
                         partitionKindName(strategies[s]),
                     TextTable::num(v, 3));
        }
        lb.row(row);
    }
    rep.print(lb);

    rep.note("wall_ms.jobs1", TextTable::num(ms1, 1));
    rep.note("wall_ms.jobs4", TextTable::num(ms4, 1));
    rep.note("speedup.jobs4", speedup4);
    rep.note("speedup_claimed", canClaim ? "yes" : "no");
    rep.note("hardware_concurrency", std::to_string(hw));
    rep.note("deterministic", identical ? "yes" : "no");
    return identical ? 0 : 1;
}
