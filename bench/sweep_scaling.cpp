/**
 * @file
 * Parallel sweep scaling: the four headline workloads (SpMV, SpMSpM,
 * SpKAdd, PR) run as one paired baseline+TMU sweep on 1 and 4 host
 * threads. Reports wall-clock per job count, the speedup over the
 * serial sweep, and a cycle-exactness check between the two runs —
 * the SweepRunner contract is that simulated results are byte-
 * identical for any job count, so the only thing allowed to change
 * is the wall clock.
 *
 * On a 4+ core host the 4-way sweep is expected to finish >= 2x
 * faster than the serial one (four independent tasks, no shared
 * state). The host's actual concurrency is recorded in the report:
 * on fewer cores the speedup degrades toward 1x, which is honest,
 * not a failure.
 */

#include "bench_util.hpp"

#include <chrono>

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

namespace {

struct Cell
{
    std::string workload;
    std::string input;
    PairResult pr;
};

/** Run the paired sweep on @p jobs threads; returns wall-clock ms. */
double
timedSweep(const std::vector<std::string> &names, int jobs,
           std::vector<Cell> &cells)
{
    cells.clear();
    for (const auto &name : names) {
        Cell c;
        c.workload = name;
        c.input = makeWorkload(name)->inputs().front();
        cells.push_back(std::move(c));
    }
    const auto t0 = std::chrono::steady_clock::now();
    parallelFor(cells.size(), jobs, [&](std::size_t i) {
        Cell &c = cells[i];
        auto wl = makeWorkload(c.workload);
        wl->prepare(c.input, scaleFor(*wl));
        c.pr = runPair(*wl, defaultConfig(scaleFor(*wl)));
    });
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

} // namespace

int
main()
{
    BenchReport rep("sweep");
    printBanner("Parallel sweep scaling (--jobs 1 vs --jobs 4)",
                defaultConfig(matrixScale()));

    const std::vector<std::string> names = {"SpMV", "SpMSpM", "SpKAdd",
                                            "PR"};
    std::vector<Cell> serial, parallel4;
    const double ms1 = timedSweep(names, 1, serial);
    const double ms4 = timedSweep(names, 4, parallel4);

    const unsigned hw = sim::SweepRunner::hardwareJobs();
    TextTable t("sweep wall clock, 4 workloads, baseline+tmu each");
    t.header({"jobs", "wall ms", "speedup"});
    t.row({"1", TextTable::num(ms1, 1), "1.00"});
    t.row({"4", TextTable::num(ms4, 1),
           TextTable::num(ms4 > 0.0 ? ms1 / ms4 : 0.0, 2)});
    rep.print(t);
    std::printf("host hardware_concurrency: %u\n\n", hw);

    // Determinism: the simulated cycle counts must not depend on the
    // job count. Any mismatch is a bug in task isolation.
    bool identical = serial.size() == parallel4.size();
    TextTable d("jobs=1 vs jobs=4 simulated cycles");
    d.header({"workload", "input", "base cycles", "tmu cycles",
              "match"});
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        const Cell &a = serial[i];
        const Cell &b = parallel4[i];
        const bool match =
            a.pr.base.sim.cycles == b.pr.base.sim.cycles &&
            a.pr.tmu.sim.cycles == b.pr.tmu.sim.cycles;
        identical = identical && match;
        d.row({a.workload, a.input,
               std::to_string(a.pr.base.sim.cycles),
               std::to_string(a.pr.tmu.sim.cycles),
               match ? "yes" : "NO"});
    }
    rep.print(d);
    std::printf("deterministic across job counts: %s\n",
                identical ? "yes" : "NO");

    rep.note("wall_ms.jobs1", TextTable::num(ms1, 1));
    rep.note("wall_ms.jobs4", TextTable::num(ms4, 1));
    rep.note("speedup.jobs4",
             TextTable::num(ms4 > 0.0 ? ms1 / ms4 : 0.0, 2));
    rep.note("hardware_concurrency", std::to_string(hw));
    rep.note("deterministic", identical ? "yes" : "no");
    return identical ? 0 : 1;
}
