/**
 * @file
 * Engine design-choice ablations beyond the paper's Fig. 14 (the
 * DESIGN.md §7 list): memory-issue rate, outstanding-request budget,
 * conjunctive skip-ahead rate, serializer bandwidth, and the SpKAdd
 * input count k. Each sweep varies one knob from the Table 5 design
 * and reports TMU cycles (speedup over the default configuration).
 */

#include "bench_util.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

namespace {

/** Run one TMU-mode configuration and return cycles. */
Cycle
runTmu(Workload &wl, RunConfig cfg)
{
    cfg.mode = Mode::Tmu;
    const RunResult r = wl.run(cfg);
    if (!r.verified)
        std::fprintf(stderr, "WARNING: %s failed verification\n",
                     wl.name().c_str());
    return r.sim.cycles;
}

} // namespace

int
main()
{
    BenchReport rep("ablation_engine");
    printBanner("Engine ablations (DESIGN.md section 7)",
                defaultConfig(matrixScale()));

    // 1. Memory-issue rate and outstanding budget on SpMV (MLP knobs).
    {
        auto wl = makeWorkload("SpMV");
        wl->prepare("M3", matrixScale());
        const RunConfig base = defaultConfig(matrixScale());
        const Cycle ref = runTmu(*wl, base);

        TextTable t("SpMV/M3 - arbiter knobs (speedup vs default)");
        t.header({"knob", "value", "speedup"});
        for (const int issue : {1, 2, 4}) {
            RunConfig cfg = base;
            cfg.tmu.issuePerCycle = issue;
            t.row({"issue/cycle", std::to_string(issue),
                   TextTable::num(static_cast<double>(ref) /
                                      static_cast<double>(
                                          runTmu(*wl, cfg)),
                                  2)});
        }
        for (const int outst : {16, 32, 64, 128, 256}) {
            RunConfig cfg = base;
            cfg.tmu.maxOutstanding = outst;
            t.row({"outstanding", std::to_string(outst),
                   TextTable::num(static_cast<double>(ref) /
                                      static_cast<double>(
                                          runTmu(*wl, cfg)),
                                  2)});
        }
        rep.print(t);
        std::printf("\n");
    }

    // 2. Conjunctive skip-ahead on TriangleCount (merge throughput).
    {
        auto wl = makeWorkload("TC");
        wl->prepare("M2", matrixScale());
        const RunConfig base = defaultConfig(matrixScale());
        const Cycle ref = runTmu(*wl, base);

        TextTable t("TC/M2 - conjunctive skip rate (speedup vs "
                    "default of 4)");
        t.header({"skip/cycle", "speedup"});
        for (const int skip : {1, 2, 4, 8}) {
            RunConfig cfg = base;
            cfg.tmu.conjSkipPerCycle = skip;
            t.row({std::to_string(skip),
                   TextTable::num(static_cast<double>(ref) /
                                      static_cast<double>(
                                          runTmu(*wl, cfg)),
                                  2)});
        }
        rep.print(t);
        std::printf("\n");
    }

    // 3. Serializer bandwidth on SpKAdd (record-rate-bound workload).
    {
        auto wl = makeWorkload("SpKAdd");
        wl->prepare("M2", matrixScale());
        const RunConfig base = defaultConfig(matrixScale());
        const Cycle ref = runTmu(*wl, base);

        TextTable t("SpKAdd/M2 - serializer records/cycle");
        t.header({"records/cycle", "speedup"});
        for (const int rate : {1, 2, 4}) {
            RunConfig cfg = base;
            cfg.tmu.recordsPerCycle = rate;
            t.row({std::to_string(rate),
                   TextTable::num(static_cast<double>(ref) /
                                      static_cast<double>(
                                          runTmu(*wl, cfg)),
                                  2)});
        }
        rep.print(t);
        std::printf("\n");
    }

    std::printf("Note: Fig. 14 (storage x SVE width) and the outQ\n"
                "chunk-size sweep live in fig14_sensitivity and\n"
                "fig13_rw_ratio respectively.\n");
    return 0;
}
