/**
 * @file
 * Paper Fig. 15: state-of-the-art comparison on SpMV and SpMSpM —
 * IMP (indirect memory prefetcher, paper [67]), a Single-Lane engine
 * with the full 16 KiB of storage (the HATS/SpZip proxy, Sec. 7.3),
 * and the multi-lane TMU, all relative to the software baseline.
 *
 * Expected shape (paper: SpMV 1.25x/1.59x/3.32x, SpMSpM ~1x/1.50x/
 * 2.82x): IMP helps SpMV but thrashes SpMSpM's partial results;
 * Single-Lane gains from decoupling but lacks parallel loading.
 */

#include "bench_util.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

int
main()
{
    BenchReport rep("fig15_sota");
    printBanner("Fig. 15 - IMP vs Single-Lane vs TMU",
                defaultConfig(matrixScale()));

    TextTable t("speedup over software baseline");
    t.header({"workload", "input", "IMP", "Single-Lane", "TMU"});

    for (const char *name : {"SpMV", "SpMSpM"}) {
        auto wl = makeWorkload(name);
        std::vector<double> gImp, gSingle, gTmu;
        for (const auto &input : wl->inputs()) {
            wl->prepare(input, scaleFor(*wl));

            RunConfig cfg = defaultConfig(scaleFor(*wl));
            cfg.mode = Mode::Baseline;
            const RunResult base = wl->run(cfg);

            cfg.system.impPrefetcher = true;
            const RunResult imp = wl->run(cfg);
            cfg.system.impPrefetcher = false;

            cfg.mode = Mode::Tmu;
            cfg.programLanes = 1;
            cfg.tmu.perLaneBytes = 16 * 1024; // same total storage
            const RunResult single = wl->run(cfg);

            cfg.programLanes = 8;
            cfg.tmu.perLaneBytes = 2048;
            const RunResult tmu = wl->run(cfg);

            auto speedup = [&](const RunResult &r) {
                return static_cast<double>(base.sim.cycles) /
                       static_cast<double>(r.sim.cycles);
            };
            t.row({name, input, TextTable::num(speedup(imp), 2),
                   TextTable::num(speedup(single), 2),
                   TextTable::num(speedup(tmu), 2)});
            gImp.push_back(speedup(imp));
            gSingle.push_back(speedup(single));
            gTmu.push_back(speedup(tmu));
        }
        t.row({name, "geomean", TextTable::num(geomean(gImp), 2),
               TextTable::num(geomean(gSingle), 2),
               TextTable::num(geomean(gTmu), 2)});
    }
    rep.print(t);
    return 0;
}
