/**
 * @file
 * Paper Fig. 13: outQ read-to-write ratio per workload — the time the
 * core takes to process (read) an outQ block over the time the TMU
 * takes to produce (write) it, averaged over blocks.
 *
 * Expected shape: < 1 for TC, SpMV and MTTKRP (core faster than
 * engine), ~1 for SpKAdd/SpTC (balanced), > 1 for SpMSpM, PR and
 * CP-ALS (core-side compute is the bottleneck).
 *
 * An extra ablation sweeps the outQ chunk size (a DESIGN.md design
 * choice) on SpMV.
 */

#include "bench_util.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

int
main()
{
    BenchReport rep("fig13_rw_ratio");
    RunConfig cfg = defaultConfig(matrixScale());
    printBanner("Fig. 13 - outQ read-to-write ratio", cfg);

    TextTable t("read-to-write ratio (geomean inputs)");
    t.header({"workload", "rw ratio", "speedup"});
    for (const auto &name : allWorkloads()) {
        auto wl = makeWorkload(name);
        RunningStat rw;
        std::vector<double> speedups;
        const RunConfig wlCfg = defaultConfig(scaleFor(*wl));
        for (const auto &input : wl->inputs()) {
            wl->prepare(input, scaleFor(*wl));
            const PairResult pr = runPair(*wl, wlCfg);
            rw.add(pr.tmu.rwRatio);
            speedups.push_back(pr.speedup());
        }
        t.row({name, TextTable::num(rw.mean(), 2),
               TextTable::num(geomean(speedups), 2)});
    }
    rep.print(t);

    // Ablation: outQ chunk size on SpMV (double-buffered either way).
    std::printf("\n");
    TextTable ab("ablation - outQ chunk bytes (SpMV, M3)");
    ab.header({"chunk B", "tmu cycles", "rw ratio"});
    auto wl = makeWorkload("SpMV");
    wl->prepare("M3", matrixScale());
    for (const std::size_t chunk : {256u, 512u, 1024u, 4096u}) {
        RunConfig c = cfg;
        c.mode = Mode::Tmu;
        c.tmu.chunkBytes = chunk;
        const RunResult r = wl->run(c);
        ab.row({std::to_string(chunk), std::to_string(r.sim.cycles),
                TextTable::num(r.rwRatio, 2)});
    }
    rep.print(ab);
    return 0;
}
