/**
 * @file
 * Paper Fig. 14: design-space heatmap varying total engine storage
 * {4, 8, 16, 32} KiB and SVE vector length {128, 256, 512} bits (the
 * lane count follows the vector length: 512 b -> 8 lanes). Speedups
 * are normalized to the evaluated 16 KiB / 512-bit design.
 *
 * Expected shape: SpMV is storage-sensitive (deeper queues = more MLP)
 * and insensitive to vector length (rw ratio 0.5); SpMSpM is the
 * opposite: vector length feeds the core-side bottleneck
 * (rw ratio > 1).
 */

#include "bench_util.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

int
main()
{
    BenchReport rep("fig14_sensitivity");
    printBanner("Fig. 14 - storage x vector-length sensitivity",
                defaultConfig(matrixScale()));

    const std::vector<std::size_t> storages = {4096, 8192, 16384,
                                               32768};
    const std::vector<int> sveBits = {128, 256, 512};

    for (const char *name : {"SpMV", "SpMSpM"}) {
        const auto inputs = makeWorkload(name)->inputs();

        // One sweep task per input: each prepares a private workload
        // instance and fills its own cycles[storage][sve] grid; the
        // geomean fold below consumes the grids in input order.
        std::vector<std::vector<std::vector<double>>> grids(
            inputs.size());
        parallelFor(inputs.size(), benchJobs(), [&](std::size_t i) {
            auto wl = makeWorkload(name);
            wl->prepare(inputs[i], scaleFor(*wl));
            auto &grid = grids[i];
            grid.assign(storages.size(),
                        std::vector<double>(sveBits.size(), 0.0));
            for (size_t s = 0; s < storages.size(); ++s) {
                for (size_t v = 0; v < sveBits.size(); ++v) {
                    RunConfig cfg = defaultConfig(scaleFor(*wl));
                    cfg.mode = Mode::Tmu;
                    cfg.system.simdBits = sveBits[v];
                    cfg.programLanes = sveBits[v] / 64;
                    cfg.tmu.lanes = cfg.programLanes;
                    cfg.tmu.perLaneBytes =
                        storages[s] /
                        static_cast<std::size_t>(cfg.tmu.lanes);
                    const RunResult r = wl->run(cfg);
                    grid[s][v] = static_cast<double>(r.sim.cycles);
                }
            }
        });

        // Geomean cycles per configuration over the input suite.
        auto cells = std::vector<std::vector<double>>(
            storages.size(), std::vector<double>(sveBits.size(), 1.0));
        for (const auto &grid : grids)
            for (size_t s = 0; s < storages.size(); ++s)
                for (size_t v = 0; v < sveBits.size(); ++v)
                    cells[s][v] *= grid[s][v];
        const double exp = 1.0 / static_cast<double>(inputs.size());
        for (auto &rowv : cells)
            for (auto &c : rowv)
                c = std::pow(c, exp);

        // Normalize to 16 KiB / 512 b (the Table 5 design point).
        const double refCycles = cells[2][2];
        TextTable t(std::string("Fig. 14 - ") + name +
                    " (speedup normalized to 16KiB/512b)");
        t.header({"storage", "SVE 128", "SVE 256", "SVE 512"});
        for (size_t s = 0; s < storages.size(); ++s) {
            t.row({std::to_string(storages[s] / 1024) + "KiB",
                   TextTable::num(refCycles / cells[s][0], 2),
                   TextTable::num(refCycles / cells[s][1], 2),
                   TextTable::num(refCycles / cells[s][2], 2)});
        }
        rep.print(t);
        std::printf("\n");
    }
    return 0;
}
