/**
 * @file
 * Paper Fig. 10: TMU speedups over the vectorized software baselines,
 * linear algebra workloads (left, inputs M1-M6) and tensor algebra
 * workloads (right, inputs T1-T4), plus the Table 6 input inventory
 * and the per-class geomeans quoted in the abstract (3.6x memory-,
 * 2.8x compute-, 4.9x merge-intensive).
 */

#include "bench_util.hpp"

#include "tensor/suite.hpp"

using namespace tmu;
using namespace tmu::bench;
using namespace tmu::workloads;

namespace {

void
printTable6(BenchReport &rep)
{
    TextTable t("Table 6 - inputs (published stats -> surrogate)");
    t.header({"id", "stands for", "domain", "paper rows/dims",
              "paper nnz", "surrogate rows", "surrogate nnz"});
    for (const auto &m : tensor::matrixSuite()) {
        const auto a = m.generate(matrixScale());
        t.row({m.id, m.name, m.domain, std::to_string(m.paperRows),
               std::to_string(m.paperNnz), std::to_string(a.rows()),
               std::to_string(a.nnz())});
    }
    for (const auto &ti : tensor::tensorSuite()) {
        const auto a = ti.generate(tensorScale());
        std::string dims;
        for (size_t d = 0; d < ti.paperDims.size(); ++d) {
            dims += (d ? "x" : "") + std::to_string(ti.paperDims[d]);
        }
        std::string sdims;
        for (size_t d = 0; d < a.dims().size(); ++d) {
            sdims += (d ? "x" : "") + std::to_string(a.dims()[d]);
        }
        t.row({ti.id, ti.name, ti.domain, dims,
               std::to_string(ti.paperNnz), sdims,
               std::to_string(a.nnz())});
    }
    rep.print(t);
    std::printf("\n");
}

} // namespace

int
main()
{
    BenchReport rep("fig10_speedups");
    RunConfig cfg = defaultConfig(matrixScale());
    printBanner("Fig. 10 - TMU speedups over software baselines", cfg);
    printTable6(rep);

    TextTable t("Fig. 10 - speedup per workload and input");
    t.header({"workload", "input", "base cycles", "tmu cycles",
              "speedup", "verified"});

    std::vector<double> memClass, computeClass, mergeClass;
    TextTable gm("per-workload geomean speedups");
    gm.header({"workload", "class", "geomean"});

    const std::vector<PairCell> cells =
        runPairSweep(allWorkloads(), benchJobs());
    for (std::size_t i = 0; i < cells.size();) {
        // Cells are grouped by workload in enumeration order; fold one
        // workload's inputs into its geomean row.
        const std::string &name = cells[i].workload;
        std::vector<double> speedups;
        Workload::Class wlClass = cells[i].cls;
        for (; i < cells.size() && cells[i].workload == name; ++i) {
            const PairCell &c = cells[i];
            t.row({name, c.input,
                   std::to_string(c.pr.base.sim.cycles),
                   std::to_string(c.pr.tmu.sim.cycles),
                   TextTable::num(c.pr.speedup(), 2),
                   c.pr.verified() ? "yes" : "NO"});
            speedups.push_back(c.pr.speedup());
        }
        const double g = geomean(speedups);
        const char *cls = "";
        switch (wlClass) {
          case Workload::Class::MemoryIntensive:
            cls = "memory";
            memClass.push_back(g);
            break;
          case Workload::Class::ComputeIntensive:
            cls = "compute";
            computeClass.push_back(g);
            break;
          case Workload::Class::MergeIntensive:
            cls = "merge";
            mergeClass.push_back(g);
            break;
        }
        gm.row({name, cls, TextTable::num(g, 2)});
    }
    rep.print(t);
    std::printf("\n");
    rep.print(gm);

    std::printf("\nClass geomeans (paper: memory 3.58x, compute 2.82x, "
                "merge 4.94x):\n");
    std::printf("  memory-intensive  %.2fx\n", geomean(memClass));
    std::printf("  compute-intensive %.2fx\n", geomean(computeClass));
    std::printf("  merge-intensive   %.2fx\n", geomean(mergeClass));
    rep.note("geomean.memory", TextTable::num(geomean(memClass), 2));
    rep.note("geomean.compute",
             TextTable::num(geomean(computeClass), 2));
    rep.note("geomean.merge", TextTable::num(geomean(mergeClass), 2));
    return 0;
}
